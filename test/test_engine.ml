(* Tests for the incremental, compositional linearizability engine
   (Wfc_linearize.Engine): standalone frontier checking against the classic
   bitmask DFS, per-object decomposition past the 62-op limit, and the fused
   Explore tracker against the per-leaf oracle — clean and under fault
   adversaries. *)

open Wfc_spec
open Wfc_zoo
open Wfc_program
module Engine = Wfc_linearize.Engine
module Explore = Wfc_sim.Explore
module Faults = Wfc_sim.Faults

let mk_op ?(proc = 0) ?(op_index = 0) ~inv ~resp ~s ~e () : Wfc_sim.Exec.op =
  {
    proc;
    op_index;
    inv;
    resp;
    start_step = s;
    end_step = e;
    steps = e - s + 1;
  }

let bit = Register.bit ~ports:4

let is_lin verdict =
  match verdict with
  | Engine.Linearizable _ -> true
  | Engine.Not_linearizable _ -> false

(* Every standalone-history test runs BOTH checkers — the classic bitmask
   DFS ([check], via per-object decomposition) and the frontier algorithm
   ([check_history]) — and demands the same verdict. *)
let both_reject name ~spec ops =
  Alcotest.(check bool)
    (name ^ ": classic check rejects")
    false
    (is_lin (Engine.check ~spec ops));
  Alcotest.(check bool)
    (name ^ ": frontier check rejects")
    false
    (is_lin (Engine.check_history ~spec ops))

let both_accept name ~spec ops =
  Alcotest.(check bool)
    (name ^ ": classic check accepts")
    true
    (is_lin (Engine.check ~spec ops));
  Alcotest.(check bool)
    (name ^ ": frontier check accepts")
    true
    (is_lin (Engine.check_history ~spec ops))

(* --- canonical anomalies, rejected by both checkers ------------------------- *)

let test_stale_read () =
  both_reject "stale read" ~spec:bit
    [
      mk_op ~proc:0 ~inv:(Ops.write Value.truth) ~resp:Ops.ok ~s:0 ~e:0 ();
      mk_op ~proc:1 ~inv:Ops.read ~resp:Value.falsity ~s:1 ~e:1 ();
    ]

let test_lost_update () =
  (* two non-overlapping fetch-and-adds both observing 0: the second update
     is lost *)
  let faa = Rmw.fetch_add_mod ~ports:2 ~modulus:5 in
  both_reject "lost update" ~spec:faa
    [
      mk_op ~proc:0 ~inv:(Ops.fetch_add 1) ~resp:(Value.int 0) ~s:0 ~e:0 ();
      mk_op ~proc:1 ~inv:(Ops.fetch_add 1) ~resp:(Value.int 0) ~s:1 ~e:1 ();
    ];
  (* sanity: the correct interleaving is accepted *)
  both_accept "serial faa" ~spec:faa
    [
      mk_op ~proc:0 ~inv:(Ops.fetch_add 1) ~resp:(Value.int 0) ~s:0 ~e:0 ();
      mk_op ~proc:1 ~inv:(Ops.fetch_add 1) ~resp:(Value.int 1) ~s:1 ~e:1 ();
    ]

let test_out_of_thin_air () =
  (* nothing was ever written, yet the read observes [truth] *)
  both_reject "out of thin air" ~spec:bit
    [ mk_op ~proc:1 ~inv:Ops.read ~resp:Value.truth ~s:0 ~e:0 () ]

let test_overlap_both_orders () =
  let write =
    mk_op ~proc:0 ~inv:(Ops.write Value.truth) ~resp:Ops.ok ~s:1 ~e:3 ()
  in
  List.iter
    (fun v ->
      both_accept
        (Fmt.str "overlapping read %a" Value.pp v)
        ~spec:bit
        [ write; mk_op ~proc:1 ~inv:Ops.read ~resp:v ~s:0 ~e:2 () ])
    [ Value.falsity; Value.truth ]

let test_frontier_witness_order () =
  let w =
    mk_op ~proc:0 ~inv:(Ops.write Value.truth) ~resp:Ops.ok ~s:0 ~e:4 ()
  in
  let r = mk_op ~proc:1 ~inv:Ops.read ~resp:Value.truth ~s:1 ~e:2 () in
  match Engine.check_history ~spec:bit [ w; r ] with
  | Engine.Linearizable [ o1; o2 ] ->
    Alcotest.(check int) "write first" 0 o1.Wfc_sim.Exec.proc;
    Alcotest.(check int) "read second" 1 o2.Wfc_sim.Exec.proc
  | _ -> Alcotest.fail "expected a 2-op witness"

(* --- beyond 62 operations --------------------------------------------------- *)

(* [n] sequential write-truth/read-truth rounds on object [obj], starting at
   step [base]; trivially linearizable per object. *)
let rounds ~obj ~proc ~base n =
  List.concat
    (List.init n (fun i ->
         let s = base + (4 * i) in
         let addr inner = if obj < 0 then inner else Ops.at obj inner in
         [
           mk_op ~proc ~op_index:(2 * i)
             ~inv:(addr (Ops.write Value.truth))
             ~resp:Ops.ok ~s ~e:s ();
           mk_op ~proc
             ~op_index:((2 * i) + 1)
             ~inv:(addr Ops.read) ~resp:Value.truth ~s:(s + 1) ~e:(s + 1) ();
         ]))

let test_long_multi_object_history () =
  (* 80 ops across two objects: over the old global 62-op hard limit, but 40
     per object — the compositional check now passes it *)
  let ops = rounds ~obj:0 ~proc:0 ~base:0 20 @ rounds ~obj:1 ~proc:1 ~base:0 20 in
  Alcotest.(check int) "80 ops" 80 (List.length ops);
  (match Engine.check ~spec:bit ops with
  | Engine.Linearizable w ->
    Alcotest.(check int) "witness covers every op" 80 (List.length w)
  | Engine.Not_linearizable d -> Alcotest.failf "rejected: %s" d);
  (* the facade takes the same route *)
  Alcotest.(check bool)
    "Linearizability.check agrees" true
    (Wfc_linearize.Linearizability.is_linearizable ~spec:bit ops)

let contains_substring ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_long_single_object_overflows () =
  (* 70 ops all addressed to ONE object: decomposition cannot help, and the
     bitmask DFS must refuse, naming the object... *)
  let ops = rounds ~obj:0 ~proc:0 ~base:0 35 in
  (match Engine.check ~spec:bit ops with
  | exception Invalid_argument msg ->
    Alcotest.(check bool)
      "error names the object" true
      (contains_substring ~sub:"object 0" msg)
  | _ -> Alcotest.fail "expected Invalid_argument past 62 ops");
  (* ...while the frontier algorithm has no operation-count limit *)
  Alcotest.(check bool)
    "frontier check handles 70 ops" true
    (is_lin (Engine.check_history ~spec:bit ops))

(* --- frontier vs classic on randomized tiny histories ----------------------- *)

let gen_tiny_history =
  let open QCheck.Gen in
  let* n = int_range 1 5 in
  let op i =
    let* proc = int_range 0 1 in
    let* is_write = bool in
    let* v = bool in
    let* start = int_range 0 8 in
    let* len = int_range 0 4 in
    let+ resp_v = bool in
    {
      Wfc_sim.Exec.proc;
      op_index = i;
      inv = (if is_write then Ops.write (Value.bool v) else Ops.read);
      resp = (if is_write then Ops.ok else Value.bool resp_v);
      start_step = start;
      end_step = start + len;
      steps = 1;
    }
  in
  let rec ops i =
    if i = n then return []
    else
      let* o = op i in
      let+ rest = ops (i + 1) in
      o :: rest
  in
  ops 0

let sequentialize_by_proc ops =
  let by_proc p =
    List.filter (fun (o : Wfc_sim.Exec.op) -> o.proc = p) ops
  in
  let space ops =
    List.mapi
      (fun i (o : Wfc_sim.Exec.op) ->
        {
          o with
          Wfc_sim.Exec.op_index = i;
          start_step = o.start_step + (20 * i);
          end_step = o.end_step + (20 * i);
        })
      ops
  in
  space (by_proc 0) @ space (by_proc 1)

let prop_frontier_matches_classic =
  QCheck.Test.make ~count:500 ~name:"check_history agrees with check"
    (QCheck.make gen_tiny_history)
    (fun ops ->
      let ops = sequentialize_by_proc ops in
      let spec = Register.bit ~ports:2 in
      is_lin (Engine.check_history ~spec ops) = is_lin (Engine.check ~spec ops))

(* --- fused verification: incremental vs per-leaf oracle --------------------- *)

(* the implementations under differential test: a correct one, a torn-write
   one (atomicity violation), and a regular-but-not-atomic one *)
let bit_from_two_bits ~procs =
  let b = Register.bit ~ports:procs in
  Implementation.make ~target:b ~procs
    ~objects:[ (b, Value.falsity); (b, Value.falsity) ]
    ~program:(fun ~proc:_ ~inv local ->
      let open Program.Syntax in
      match inv with
      | Value.Sym "read" ->
        let+ v = Program.invoke ~obj:1 Ops.read in
        (v, local)
      | Value.Pair (Value.Sym "write", v) ->
        let* _ = Program.invoke ~obj:0 (Ops.write v) in
        let+ _ = Program.invoke ~obj:1 (Ops.write v) in
        (Ops.ok, local)
      | _ -> assert false)
    ()

let torn_write_reg ~procs =
  let reg = Register.bounded ~ports:procs ~values:3 in
  Implementation.make ~target:reg ~procs
    ~objects:[ (reg, Value.int 0) ]
    ~program:(fun ~proc:_ ~inv local ->
      let open Program.Syntax in
      match inv with
      | Value.Sym "read" ->
        let+ v = Program.invoke ~obj:0 Ops.read in
        (v, local)
      | Value.Pair (Value.Sym "write", Value.Int v) ->
        let* _ = Program.invoke ~obj:0 (Ops.write (Value.int ((v + 1) mod 3))) in
        let+ _ = Program.invoke ~obj:0 (Ops.write (Value.int v)) in
        (Ops.ok, local)
      | _ -> assert false)
    ()

let regular_identity ~procs =
  let base = Weak_register.regular_bit ~ports:procs in
  Implementation.make ~target:(Register.bit ~ports:procs) ~procs
    ~objects:[ (base, Weak_register.initial Value.falsity) ]
    ~program:(fun ~proc:_ ~inv local ->
      let open Program.Syntax in
      match inv with
      | Value.Sym "read" ->
        let+ v = Program.invoke ~obj:0 Ops.read in
        (v, local)
      | Value.Pair (Value.Sym "write", v) ->
        let* _ = Program.invoke ~obj:0 (Ops.write_start v) in
        let+ _ = Program.invoke ~obj:0 Ops.write_end in
        (Ops.ok, local)
      | _ -> assert false)
    ()

let verify_modes = [ Engine.Per_leaf; Engine.Incremental { compositional = false };
                     Engine.Incremental { compositional = true } ]

let verdicts impl ~workloads ~faults =
  List.map
    (fun mode ->
      Result.is_ok (Engine.verify impl ~workloads ~faults ~mode ()))
    verify_modes

let all_equal = function
  | [] -> true
  | v :: vs -> List.for_all (Bool.equal v) vs

let test_good_impl_all_modes () =
  let oks =
    verdicts (bit_from_two_bits ~procs:2)
      ~workloads:
        [|
          [ Ops.write Value.truth; Ops.read ];
          [ Ops.read; Ops.write Value.falsity ];
        |]
      ~faults:Faults.none
  in
  Alcotest.(check (list bool)) "every mode accepts" [ true; true; true ] oks

let test_torn_write_all_modes () =
  let oks =
    verdicts (torn_write_reg ~procs:2)
      ~workloads:[| [ Ops.write (Value.int 1) ]; [ Ops.read ] |]
      ~faults:Faults.none
  in
  Alcotest.(check (list bool)) "every mode rejects" [ false; false; false ] oks

let test_crash_adversary_all_modes () =
  (* a crash mid-write leaves the two base bits inconsistent, but the write
     never completes so the history stays linearizable: all modes agree Ok *)
  let oks =
    verdicts (bit_from_two_bits ~procs:2)
      ~workloads:
        [|
          [ Ops.write Value.truth; Ops.read ];
          [ Ops.read; Ops.write Value.falsity ];
        |]
      ~faults:(Faults.crashes 1)
  in
  Alcotest.(check (list bool)) "parity under crashes" [ true; true; true ] oks

let test_two_registers_compositional () =
  let reg = Register.bit ~ports:2 in
  let impl =
    Implementation.make ~target:(Engine.indexed 2 reg) ~procs:2
      ~objects:[ (reg, Value.falsity); (reg, Value.falsity) ]
      ~program:(fun ~proc:_ ~inv local ->
        let open Program.Syntax in
        let i, inner = Ops.at_target inv in
        let+ v = Program.invoke ~obj:i inner in
        (v, local))
      ()
  in
  let workloads =
    [|
      [ Ops.at 0 (Ops.write Value.truth); Ops.at 1 Ops.read ];
      [ Ops.at 1 (Ops.write Value.truth); Ops.at 0 Ops.read ];
    |]
  in
  let run mode =
    Engine.verify impl ~workloads ~mode ~component:(reg, Value.falsity) ()
  in
  (match run Engine.Per_leaf with
  | Ok _ -> ()
  | Error v -> Alcotest.failf "per-leaf: %a" Engine.pp_violation v);
  match run (Engine.Incremental { compositional = true }) with
  | Ok stats ->
    Alcotest.(check bool)
      "compositional did real work" true
      (stats.Engine.transitions > 0)
  | Error v -> Alcotest.failf "compositional: %a" Engine.pp_violation v

(* randomized differential test: implementation × workload × adversary,
   incremental (plain and compositional) vs the per-leaf oracle *)
let prop_fused_matches_per_leaf =
  QCheck.Test.make ~count:40 ~name:"Engine.verify parity incl. faults"
    QCheck.(pair (int_bound 2) (int_bound 3))
    (fun (impl_i, adv_i) ->
      let impl, workloads =
        match impl_i with
        | 0 ->
          ( bit_from_two_bits ~procs:2,
            [|
              [ Ops.write Value.truth; Ops.read ];
              [ Ops.read; Ops.write Value.falsity ];
            |] )
        | 1 ->
          ( torn_write_reg ~procs:2,
            [| [ Ops.write (Value.int 1) ]; [ Ops.read ] |] )
        | _ ->
          ( regular_identity ~procs:2,
            [| [ Ops.write Value.truth ]; [ Ops.read; Ops.read ] |] )
      in
      let faults =
        match adv_i with
        | 0 -> Faults.none
        | 1 -> Faults.crashes 1
        | 2 -> Faults.crash_recovery ~crashes:1 ~recoveries:1
        | _ -> Faults.degrade_all impl ~glitches:1 (`Stale 1)
      in
      all_equal (verdicts impl ~workloads ~faults))

(* --- adaptive parallelism --------------------------------------------------- *)

let test_par_threshold () =
  let impl = Implementation.identity (Register.bit ~ports:2) ~procs:2 in
  (* deep enough that the BFS frontier expansion (8 levels) does not already
     exhaust the tree, so pool startup is really the threshold's call *)
  let workloads =
    [|
      [ Ops.write Value.truth; Ops.read; Ops.write Value.falsity ];
      [ Ops.read; Ops.write Value.truth; Ops.read ];
    |]
  in
  (* [dedup_threshold:0] pins dedup activation to the root in both runs:
     with the lazy default the sequential drain and the per-worker tables
     would activate at different points and visit different leaf counts. *)
  let run ?par_threshold () =
    Explore.run impl ~workloads
      ~options:(Explore.parallel ~domains:2 ())
      ?par_threshold ~dedup_threshold:0 ()
  in
  (* tiny tree, default threshold: the pool must NOT spin up *)
  let seq = run () in
  Alcotest.(check int) "stays sequential below threshold" 1
    seq.Explore.domains_used;
  (* threshold 0 forces the pool; same leaves either way *)
  let par = run ~par_threshold:0 () in
  Alcotest.(check bool) "pool used at threshold 0" true
    (par.Explore.domains_used > 1);
  Alcotest.(check int) "same leaves" seq.Explore.leaves par.Explore.leaves

let () =
  Alcotest.run "wfc_engine"
    [
      ( "standalone anomalies",
        [
          Alcotest.test_case "stale read" `Quick test_stale_read;
          Alcotest.test_case "lost update" `Quick test_lost_update;
          Alcotest.test_case "out of thin air" `Quick test_out_of_thin_air;
          Alcotest.test_case "overlap both orders" `Quick
            test_overlap_both_orders;
          Alcotest.test_case "frontier witness order" `Quick
            test_frontier_witness_order;
        ] );
      ( "compositionality",
        [
          Alcotest.test_case "80-op two-object history" `Quick
            test_long_multi_object_history;
          Alcotest.test_case "70-op single object" `Quick
            test_long_single_object_overflows;
          Alcotest.test_case "two registers, fused" `Quick
            test_two_registers_compositional;
        ] );
      ( "fused verification",
        [
          Alcotest.test_case "good impl, all modes" `Quick
            test_good_impl_all_modes;
          Alcotest.test_case "torn write, all modes" `Quick
            test_torn_write_all_modes;
          Alcotest.test_case "crash adversary, all modes" `Quick
            test_crash_adversary_all_modes;
          Alcotest.test_case "par threshold" `Quick test_par_threshold;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_frontier_matches_classic;
          QCheck_alcotest.to_alcotest prop_fused_matches_per_leaf;
        ] );
    ]
