(* Tests for the fast exploration engine (Wfc_sim.Explore): bit-for-bit
   equivalence with the naive Exec.explore when every reduction is off,
   verdict/observation equivalence under duplicate-state pruning and
   partial-order reduction (including a qcheck property over randomized
   implementations and workloads), node-count regression under pruning, and
   the multicore fan-out. *)

open Wfc_spec
open Wfc_zoo
open Wfc_program
module Exec = Wfc_sim.Exec
module Explore = Wfc_sim.Explore

let value = Alcotest.testable Value.pp Value.equal

(* --- leaf projections ------------------------------------------------------ *)

(* Everything a timing-insensitive verdict can observe about a leaf. Ops are
   keyed by their unique ⟨proc, op_index⟩, so completion order is factored
   out; start/end timestamps are dropped. *)
let value_proj (leaf : Exec.leaf) =
  let ops =
    List.sort
      (fun (a : Exec.op) (b : Exec.op) ->
        compare (a.proc, a.op_index) (b.proc, b.op_index))
      leaf.ops
  in
  Value.list
    [
      Value.list (Array.to_list leaf.objects);
      Value.list (Array.to_list leaf.locals);
      Value.list
        (List.map
           (fun (o : Exec.op) ->
             Value.list
               [
                 Value.int o.proc;
                 Value.int o.op_index;
                 o.inv;
                 o.resp;
                 Value.int o.steps;
               ])
           ops);
      Value.int leaf.events;
      Value.list (List.map Value.int (Array.to_list leaf.accesses));
    ]

(* The full observation, timestamps and completion order included — only the
   exhaustive modes (naive, naive + domains) must preserve this. *)
let full_proj (leaf : Exec.leaf) =
  Value.list
    [
      value_proj leaf;
      Value.list
        (List.map
           (fun (o : Exec.op) ->
             Value.list
               [ Value.int o.proc; Value.int o.start_step; Value.int o.end_step ])
           leaf.ops);
    ]

(* [par_threshold:0] forces the domain pool and [dedup_threshold:0] the
   dedup/intern machinery even on these deliberately tiny trees — the lazy
   fallbacks are exercised separately below. *)
let collect ?fuel ?max_crashes ?(par_threshold = 0) ?(dedup_threshold = 0)
    ~options ~proj impl workloads =
  let acc = ref [] in
  let stats =
    Explore.run impl ~workloads ?fuel ?max_crashes ~options ~par_threshold
      ~dedup_threshold
      ~on_leaf:(fun leaf -> acc := proj leaf :: !acc)
      ()
  in
  (stats, List.sort Value.compare !acc)

let leaf_set leaves = List.sort_uniq Value.compare leaves

let check_same_invariants ~msg (naive : Explore.stats) (s : Explore.stats) =
  Alcotest.(check int) (msg ^ ": max_events") naive.max_events s.max_events;
  Alcotest.(check int)
    (msg ^ ": max_op_steps")
    naive.max_op_steps s.max_op_steps;
  Alcotest.(check (array int))
    (msg ^ ": max_accesses")
    naive.max_accesses s.max_accesses;
  (* pruning merges whole subtrees, so only overflow *detection* is
     preserved, not the per-path count — which is all any caller reads *)
  Alcotest.(check bool)
    (msg ^ ": overflow detection")
    (naive.overflows > 0) (s.overflows > 0);
  Alcotest.(check bool)
    (msg ^ ": visits no more leaves")
    true
    (s.leaves <= naive.leaves);
  Alcotest.(check bool)
    (msg ^ ": executes no more nodes")
    true
    (s.nodes <= naive.nodes)

(* Assert that every optimization level agrees with the naive engine on the
   timing-insensitive observation set and the invariant statistics.

   Symmetry is checked separately: it deliberately keeps only one
   representative per orbit of pid-permuted schedules, so the observation
   set (which keys ops by pid) is a *subset* of the naive one, while every
   pid-invariant statistic (max events/op steps/accesses, overflow
   detection) must still match exactly. *)
let assert_equiv ?fuel ?max_crashes impl workloads =
  let naive_stats, naive_leaves =
    collect ?fuel ?max_crashes ~options:Explore.naive ~proj:value_proj impl
      workloads
  in
  let naive_set = leaf_set naive_leaves in
  List.iter
    (fun (msg, options) ->
      let s, leaves =
        collect ?fuel ?max_crashes ~options ~proj:value_proj impl workloads
      in
      Alcotest.(check (list value))
        (msg ^ ": observation set")
        naive_set (leaf_set leaves);
      check_same_invariants ~msg naive_stats s)
    [
      ("dedup", { Explore.naive with dedup = true });
      ("por", { Explore.naive with por = true });
      ("dedup-nointern", { Explore.fast with intern = false; symmetry = false });
      ("fast", { Explore.fast with symmetry = false });
    ];
  let s_sym, sym_leaves =
    collect ?fuel ?max_crashes ~options:Explore.fast ~proj:value_proj impl
      workloads
  in
  List.iter
    (fun l ->
      Alcotest.(check bool)
        "fast+symmetry: observations are naive observations" true
        (List.exists (Value.equal l) naive_set))
    (leaf_set sym_leaves);
  check_same_invariants ~msg:"fast+symmetry" naive_stats s_sym;
  naive_stats

(* --- fixture implementations ---------------------------------------------- *)

(* [bits] atomic bits (plus a nondeterministic coin when [coin]) driven by a
   small command language; the local state remembers the last read so that
   leaf locals are sensitive to response values. *)
let rw_impl ~procs ~bits ~coin =
  let bit = Register.bit ~ports:procs in
  let coin_spec = Nondet.coin ~ports:procs in
  let objects =
    List.init bits (fun _ -> (bit, Value.falsity))
    @ (if coin then [ (coin_spec, coin_spec.Type_spec.initial) ] else [])
  in
  Implementation.make
    ~target:(Register.bit ~ports:procs)
    ~procs ~objects
    ~local_init:(fun _ -> Value.falsity)
    ~program:(fun ~proc:_ ~inv local ->
      let open Program.Syntax in
      match inv with
      | Value.Pair (Value.Sym "wr", Value.Pair (Value.Int o, b)) ->
        let+ _ = Program.invoke ~obj:o (Ops.write b) in
        (Ops.ok, local)
      | Value.Pair (Value.Sym "rd", Value.Int o) ->
        let+ v = Program.invoke ~obj:o Ops.read in
        (v, v)
      | Value.Pair (Value.Sym "cp", Value.Pair (Value.Int a, Value.Int b)) ->
        let* v = Program.invoke ~obj:a Ops.read in
        let+ _ = Program.invoke ~obj:b (Ops.write v) in
        (v, local)
      | Value.Sym "flip" ->
        let+ v = Program.invoke ~obj:bits Ops.read in
        (v, v)
      | Value.Sym "loc" -> Program.return (local, local)
      | _ -> Alcotest.fail "rw_impl: bad invocation")
    ()

let wr o b = Value.pair (Value.sym "wr") (Value.pair (Value.int o) (Value.bool b))
let rd o = Value.pair (Value.sym "rd") (Value.int o)
let cp a b = Value.pair (Value.sym "cp") (Value.pair (Value.int a) (Value.int b))

(* --- naive mode ≡ Exec.explore --------------------------------------------- *)

let exec_stats_equal msg (a : Exec.stats) (b : Exec.stats) =
  Alcotest.(check int) (msg ^ ": leaves") a.leaves b.leaves;
  Alcotest.(check int) (msg ^ ": nodes") a.nodes b.nodes;
  Alcotest.(check int) (msg ^ ": max_events") a.max_events b.max_events;
  Alcotest.(check int) (msg ^ ": max_op_steps") a.max_op_steps b.max_op_steps;
  Alcotest.(check (array int)) (msg ^ ": max_accesses") a.max_accesses
    b.max_accesses;
  Alcotest.(check int) (msg ^ ": overflows") a.overflows b.overflows

let naive_cases =
  [
    ( "tas identity",
      Implementation.identity (Rmw.test_and_set ~ports:2) ~procs:2,
      [| [ Ops.test_and_set ]; [ Ops.test_and_set ] |],
      0 );
    ( "two writers one reader",
      rw_impl ~procs:3 ~bits:2 ~coin:false,
      [| [ wr 0 true; rd 1 ]; [ cp 0 1 ]; [ rd 0; Value.sym "loc" ] |],
      0 );
    ( "nondet coin",
      rw_impl ~procs:2 ~bits:1 ~coin:true,
      [| [ Value.sym "flip"; rd 0 ]; [ wr 0 true ] |],
      0 );
    ( "with crashes",
      rw_impl ~procs:2 ~bits:2 ~coin:false,
      [| [ cp 0 1 ]; [ wr 0 true ] |],
      1 );
  ]

let test_naive_matches_exec () =
  List.iter
    (fun (msg, impl, workloads, max_crashes) ->
      let exec_leaves = ref [] in
      let exec_stats =
        Exec.explore impl ~workloads ~max_crashes
          ~on_leaf:(fun leaf -> exec_leaves := full_proj leaf :: !exec_leaves)
          ()
      in
      let s, leaves =
        collect ~max_crashes ~options:Explore.naive ~proj:full_proj impl
          workloads
      in
      exec_stats_equal msg exec_stats (Explore.to_exec_stats s);
      Alcotest.(check int) (msg ^ ": no pruning") 0 s.pruned;
      Alcotest.(check int) (msg ^ ": no sleeps") 0 s.sleep_skips;
      (* full observation multiset, timestamps included *)
      Alcotest.(check (list value))
        (msg ^ ": identical executions")
        (List.sort Value.compare !exec_leaves)
        leaves)
    naive_cases

(* --- reduced modes: verdict-relevant equivalence ---------------------------- *)

let test_equiv_fixed_workloads () =
  List.iter
    (fun (_, impl, workloads, max_crashes) ->
      ignore (assert_equiv ~max_crashes impl workloads))
    naive_cases

let test_equiv_overflow () =
  (* a spinning program: every mode must report the same overflow count 0/…
     behaviour (here: overflows > 0 and equal across modes) *)
  let bit = Register.bit ~ports:2 in
  let impl =
    Implementation.make ~target:bit ~procs:2
      ~objects:[ (bit, Value.falsity) ]
      ~program:(fun ~proc ~inv:_ _local ->
        let open Program.Syntax in
        let rec spin () =
          let* v = Program.invoke ~obj:0 Ops.read in
          if Value.as_bool v || proc = 1 then Program.return (Ops.ok, Value.unit)
          else spin ()
        in
        spin ())
      ()
  in
  let stats =
    assert_equiv ~fuel:40 impl [| [ Ops.read ]; [ Ops.read ] |]
  in
  Alcotest.(check bool) "overflow detected" true (stats.Explore.overflows > 0)

(* --- regression: pruning strictly shrinks the search ------------------------ *)

let test_dedup_strictly_prunes () =
  (* two processes on disjoint bits: all interleavings converge, so
     duplicate-state pruning must cut nodes strictly *)
  let impl = rw_impl ~procs:2 ~bits:2 ~coin:false in
  let workloads = [| [ wr 0 true; wr 0 false ]; [ wr 1 true; wr 1 false ] |] in
  let naive, _ = collect ~options:Explore.naive ~proj:value_proj impl workloads in
  let dedup, _ =
    collect
      ~options:{ Explore.naive with dedup = true }
      ~proj:value_proj impl workloads
  in
  let fast, _ = collect ~options:Explore.fast ~proj:value_proj impl workloads in
  Alcotest.(check bool) "naive explores the full diamond" true
    (naive.Explore.leaves = 6);
  Alcotest.(check bool) "dedup cuts nodes strictly" true
    (dedup.Explore.nodes < naive.Explore.nodes);
  Alcotest.(check bool) "dedup counts pruned subtrees" true
    (dedup.Explore.pruned > 0);
  Alcotest.(check bool) "por+dedup cuts at least as hard" true
    (fast.Explore.nodes <= dedup.Explore.nodes);
  Alcotest.(check bool) "por skips sleeping siblings" true
    (fast.Explore.sleep_skips > 0);
  (* fully independent processes: POR needs only one interleaving order *)
  Alcotest.(check int) "one representative schedule" 1 fast.Explore.leaves

(* --- lazy dedup-table activation -------------------------------------------- *)

let test_dedup_threshold_laziness () =
  (* same diamond as above: with [dedup_threshold] at its default the whole
     tree is visited before the table would activate, so no pruning happens
     and no table is ever allocated — yet the observations are identical *)
  let impl = rw_impl ~procs:2 ~bits:2 ~coin:false in
  let workloads = [| [ wr 0 true; wr 0 false ]; [ wr 1 true; wr 1 false ] |] in
  let options = { Explore.fast with por = false; symmetry = false } in
  let eager, eager_leaves = collect ~options ~proj:value_proj impl workloads in
  let deferred, deferred_leaves =
    collect ~dedup_threshold:Explore.default_dedup_threshold ~options
      ~proj:value_proj impl workloads
  in
  Alcotest.(check bool) "threshold 0 prunes the diamond" true
    (eager.Explore.pruned > 0);
  Alcotest.(check int) "default threshold never activates on a tiny tree" 0
    deferred.Explore.pruned;
  Alcotest.(check (list value)) "same observation set" (leaf_set eager_leaves)
    (leaf_set deferred_leaves)

(* --- process-symmetry reduction ---------------------------------------------- *)

let test_symmetry_detection () =
  let open Wfc_consensus in
  let cas3 = Protocols.from_cas ~procs:3 () in
  let equal3 = Array.make 3 [ Ops.propose Value.truth ] in
  (match Explore.Symmetry.of_impl cas3 ~workloads:equal3 with
  | None -> Alcotest.fail "equal workloads: symmetry expected"
  | Some sym ->
    Alcotest.(check (array int))
      "one class of three" [| 0; 0; 0 |]
      (Explore.Symmetry.classes sym);
    Alcotest.(check int) "3! orderings merged" 6
      (Explore.Symmetry.group_order sym));
  let mixed =
    [|
      [ Ops.propose Value.truth ];
      [ Ops.propose Value.truth ];
      [ Ops.propose Value.falsity ];
    |]
  in
  (match Explore.Symmetry.of_impl cas3 ~workloads:mixed with
  | None -> Alcotest.fail "two equal workloads: symmetry expected"
  | Some sym ->
    Alcotest.(check (array int))
      "only the equal-input pair interchanges" [| 0; 0; 2 |]
      (Explore.Symmetry.classes sym);
    Alcotest.(check int) "2! orderings merged" 2
      (Explore.Symmetry.group_order sym));
  let distinct =
    [| [ Ops.propose Value.truth ]; [ Ops.propose Value.falsity ]; [] |]
  in
  Alcotest.(check bool) "distinct workloads: no symmetry" true
    (Option.is_none (Explore.Symmetry.of_impl cas3 ~workloads:distinct));
  Alcotest.(check bool) "undeclared implementation: no symmetry" true
    (Option.is_none
       (Explore.Symmetry.of_impl
          (rw_impl ~procs:3 ~bits:1 ~coin:false)
          ~workloads:(Array.make 3 [ rd 0 ])))

let test_symmetry_node_reduction () =
  let open Wfc_consensus in
  let impl = Protocols.from_cas ~procs:3 () in
  let workloads = Array.make 3 [ Ops.propose Value.truth ] in
  let nosym, _ =
    collect
      ~options:{ Explore.fast with symmetry = false }
      ~proj:value_proj impl workloads
  in
  let sym, _ = collect ~options:Explore.fast ~proj:value_proj impl workloads in
  Alcotest.(check bool)
    "symmetry cuts nodes at least 2x on equal-input cas3" true
    (2 * sym.Explore.nodes <= nosym.Explore.nodes);
  Alcotest.(check bool) "never more leaves" true
    (sym.Explore.leaves <= nosym.Explore.leaves)

(* Verdict parity of the full checker across compaction configs, clean and
   under fault adversaries; every falsification must carry a witness that
   replays — symmetry canonicalizes only dedup keys, never the configuration
   the trace is recorded against. *)
let test_symmetry_verdict_parity () =
  let open Wfc_consensus in
  let module Faults = Wfc_sim.Faults in
  let verdict_str = function
    | Check.Verified _ -> "verified"
    | Check.Falsified _ -> "falsified"
    | Check.Unknown _ -> "unknown"
  in
  let engines =
    [
      ("naive", Explore.naive);
      ("fast-nosym", { Explore.fast with symmetry = false });
      ("fast", Explore.fast);
    ]
  in
  let cas3 = Protocols.from_cas ~procs:3 () in
  let sticky3 = Protocols.from_sticky ~procs:3 () in
  List.iter
    (fun (pname, impl, faults) ->
      let verdicts =
        List.map
          (fun (ename, engine) ->
            let v = Check.verify ~engine ~faults impl in
            (match v with
            | Check.Falsified viol -> (
              match viol.Check.witness with
              | None ->
                Alcotest.failf "%s/%s: violation without witness" pname ename
              | Some w ->
                Alcotest.(check bool)
                  (Fmt.str "%s/%s: witness replays" pname ename)
                  true
                  (Result.is_ok (Wfc_sim.Witness.replay impl w)))
            | _ -> ());
            (ename, verdict_str v))
          engines
      in
      match verdicts with
      | (_, v0) :: rest ->
        List.iter
          (fun (ename, v) ->
            Alcotest.(check string) (Fmt.str "%s: %s verdict" pname ename) v0 v)
          rest
      | [] -> ())
    [
      ("cas3-clean", cas3, Faults.none);
      ("cas3-crash", cas3, Faults.crashes 1);
      ( "sticky3-crash-recovery",
        sticky3,
        Faults.crash_recovery ~crashes:1 ~recoveries:1 );
      ("sticky3-stale", sticky3, Faults.degrade_all sticky3 ~glitches:1 (`Stale 1));
    ]

(* --- multicore fan-out ------------------------------------------------------ *)

let test_parallel_matches_sequential () =
  let impl = rw_impl ~procs:3 ~bits:2 ~coin:false in
  let workloads = [| [ cp 0 1; rd 0 ]; [ wr 0 true ]; [ cp 1 0 ] |] in
  let seq, seq_leaves =
    collect ~options:Explore.naive ~proj:full_proj impl workloads
  in
  let par, par_leaves =
    collect
      ~options:{ Explore.naive with domains = 3 }
      ~proj:full_proj impl workloads
  in
  Alcotest.(check int) "same leaves" seq.Explore.leaves par.Explore.leaves;
  Alcotest.(check int) "same nodes" seq.Explore.nodes par.Explore.nodes;
  Alcotest.(check (list value)) "same executions (timestamps included)"
    seq_leaves par_leaves;
  check_same_invariants ~msg:"parallel" seq par;
  Alcotest.(check bool) "used the pool" true (par.Explore.domains_used > 1)

let test_parallel_fast_equiv () =
  let impl = rw_impl ~procs:3 ~bits:3 ~coin:false in
  let workloads = [| [ wr 0 true; rd 0 ]; [ wr 1 true; rd 1 ]; [ cp 0 2 ] |] in
  let naive, naive_leaves =
    collect ~options:Explore.naive ~proj:value_proj impl workloads
  in
  let par, par_leaves =
    collect ~options:(Explore.parallel ~domains:3 ()) ~proj:value_proj impl
      workloads
  in
  Alcotest.(check (list value)) "parallel fast: observation set"
    (leaf_set naive_leaves) (leaf_set par_leaves);
  check_same_invariants ~msg:"parallel fast" naive par

let test_parallel_stop_and_errors () =
  let impl = rw_impl ~procs:2 ~bits:2 ~coin:false in
  let workloads = [| [ cp 0 1; cp 1 0 ]; [ wr 0 true; wr 1 true ] |] in
  (* Stop aborts early and still returns statistics *)
  let seen = Atomic.make 0 in
  let stats =
    Explore.run impl ~workloads
      ~options:{ Explore.naive with domains = 2 }
      ~on_leaf:(fun _ ->
        if Atomic.fetch_and_add seen 1 >= 3 then raise Exec.Stop)
      ()
  in
  Alcotest.(check bool) "stopped early" true
    (stats.Explore.leaves < 70 && stats.Explore.leaves > 0);
  (* other exceptions propagate to the caller *)
  let exception Boom in
  Alcotest.check_raises "exception propagates" Boom (fun () ->
      ignore
        (Explore.run impl ~workloads
           ~options:{ Explore.naive with domains = 2 }
           ~on_leaf:(fun _ -> raise Boom)
           ()))

(* --- downstream verdict equivalence ----------------------------------------- *)

let test_consensus_verdict_equivalence () =
  let open Wfc_consensus in
  let ok_naive =
    Check.result_exn
      (Check.verify ~engine:Wfc_sim.Explore.naive (Protocols.from_tas ()))
  in
  let ok_fast =
    Check.result_exn
      (Check.verify ~engine:Wfc_sim.Explore.fast (Protocols.from_tas ()))
  in
  Alcotest.(check bool) "tas: both verdicts Ok" true
    (Result.is_ok ok_naive && Result.is_ok ok_fast);
  let bad_naive =
    Check.result_exn
      (Check.verify ~engine:Wfc_sim.Explore.naive
         (Protocols.broken_register_only ()))
  in
  let bad_fast =
    Check.result_exn
      (Check.verify ~engine:Wfc_sim.Explore.fast
         (Protocols.broken_register_only ()))
  in
  Alcotest.(check bool) "broken: both verdicts Error" true
    (Result.is_error bad_naive && Result.is_error bad_fast)

let test_access_bounds_equivalence () =
  let open Wfc_consensus in
  List.iter
    (fun impl ->
      match
        ( Access_bounds.analyze ~engine:Wfc_sim.Explore.naive impl,
          Access_bounds.analyze ~engine:Wfc_sim.Explore.fast impl )
      with
      | Ok naive, Ok fast ->
        Alcotest.(check int) "same D" naive.Access_bounds.bound_d
          fast.Access_bounds.bound_d;
        Alcotest.(check (array int)) "same per-object bounds"
          naive.Access_bounds.per_object fast.Access_bounds.per_object;
        List.iter2
          (fun (a : Access_bounds.tree) (b : Access_bounds.tree) ->
            Alcotest.(check int) "same tree depth" a.depth b.depth;
            Alcotest.(check bool) "reduced tree is smaller-or-equal" true
              (b.nodes <= a.nodes))
          naive.Access_bounds.trees fast.Access_bounds.trees
      | _ -> Alcotest.fail "access-bound analysis failed")
    [ Protocols.from_tas (); Protocols.from_cas ~procs:2 () ]

(* --- randomized property: every level agrees with naive --------------------- *)

let gen_workloads =
  let open QCheck.Gen in
  let* procs = int_range 2 3 in
  let* bits = int_range 1 2 in
  let* coin = if procs = 2 then bool else return false in
  let op =
    frequency
      [
        (3, map2 (fun o b -> wr o b) (int_range 0 (bits - 1)) bool);
        (3, map (fun o -> rd o) (int_range 0 (bits - 1)));
        (2, map2 (fun a b -> cp a b) (int_range 0 (bits - 1)) (int_range 0 (bits - 1)));
        (1, return (Value.sym "loc"));
        ((if coin then 2 else 0), return (Value.sym "flip"));
      ]
  in
  let+ wls = array_size (return procs) (list_size (int_range 0 2) op) in
  (procs, bits, coin, wls)

let prop_equiv =
  QCheck.Test.make ~count:60
    ~name:"Explore: dedup/por/fast agree with naive on random workloads"
    (QCheck.make gen_workloads ~print:(fun (procs, bits, coin, wls) ->
         Fmt.str "procs=%d bits=%d coin=%b workloads=%a" procs bits coin
           Fmt.(array (list Value.pp))
           wls))
    (fun (procs, bits, coin, wls) ->
      let impl = rw_impl ~procs ~bits ~coin in
      ignore (assert_equiv impl wls);
      true)

let () =
  Alcotest.run "wfc_explore"
    [
      ( "naive parity",
        [ Alcotest.test_case "matches Exec.explore" `Quick test_naive_matches_exec ] );
      ( "equivalence",
        [
          Alcotest.test_case "fixed workloads" `Quick test_equiv_fixed_workloads;
          Alcotest.test_case "overflow parity" `Quick test_equiv_overflow;
          QCheck_alcotest.to_alcotest prop_equiv;
        ] );
      ( "reduction",
        [
          Alcotest.test_case "pruning strictly shrinks" `Quick
            test_dedup_strictly_prunes;
          Alcotest.test_case "dedup threshold is lazy" `Quick
            test_dedup_threshold_laziness;
        ] );
      ( "symmetry",
        [
          Alcotest.test_case "class detection" `Quick test_symmetry_detection;
          Alcotest.test_case "node reduction on equal inputs" `Quick
            test_symmetry_node_reduction;
          Alcotest.test_case "verdict parity incl. faults" `Quick
            test_symmetry_verdict_parity;
        ] );
      ( "multicore",
        [
          Alcotest.test_case "parallel naive parity" `Quick
            test_parallel_matches_sequential;
          Alcotest.test_case "parallel fast equivalence" `Quick
            test_parallel_fast_equiv;
          Alcotest.test_case "stop & error propagation" `Quick
            test_parallel_stop_and_errors;
        ] );
      ( "downstream verdicts",
        [
          Alcotest.test_case "consensus naive ≡ fast" `Quick
            test_consensus_verdict_equivalence;
          Alcotest.test_case "access bounds naive ≡ fast" `Quick
            test_access_bounds_equivalence;
        ] );
    ]
