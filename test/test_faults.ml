(* Fault-injection adversaries, replayable witnesses, and budgeted
   exploration: crash-recovery and degraded-register robustness of the
   paper's wait-free constructions, and the graceful-degradation contract of
   the engines. *)

open Wfc_spec
open Wfc_zoo
open Wfc_program
open Wfc_consensus
open Wfc_core

let crash_recovery = Wfc_sim.Faults.crash_recovery ~crashes:1 ~recoveries:1

(* --- wait-free protocols survive crash-recovery ----------------------------- *)

let test_protocols_survive_crash_recovery () =
  List.iter
    (fun (name, impl, subsets) ->
      match Check.verify ~subsets ~faults:crash_recovery impl with
      | Check.Verified r ->
        Alcotest.(check bool)
          (name ^ ": faulty executions explored")
          true
          (r.Check.executions > 0)
      | Check.Falsified v ->
        Alcotest.failf "%s under crash-recovery: %a" name Check.pp_violation v
      | Check.Unknown _ -> Alcotest.failf "%s: unexpected Unknown" name)
    [
      ("tas", Protocols.from_tas (), true);
      ("cas", Protocols.from_cas ~procs:2 (), true);
      ("sticky", Protocols.from_sticky ~procs:2 (), false);
    ]

let test_theorem5_pipeline_survives_faults () =
  (* Theorem 5 output (one-use bits out of bounded bits, no registers) must
     stay correct when the adversary crashes and revives processes. *)
  let strategy =
    match
      Theorem5.strategy_for (Catalog.find ~ports:2 "test-and-set").Catalog.spec
    with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let compiled =
    match Theorem5.eliminate_registers ~strategy (Protocols.from_tas ()) with
    | Ok r -> r.Theorem5.compiled
    | Error e -> Alcotest.fail e
  in
  match
    Check.verify ~subsets:false ~repeat:false ~faults:crash_recovery compiled
  with
  | Check.Verified _ -> ()
  | Check.Falsified v ->
    Alcotest.failf "compiled pipeline under crash-recovery: %a"
      Check.pp_violation v
  | Check.Unknown _ -> Alcotest.fail "unexpected Unknown"

(* --- degraded registers falsify register-dependent protocols --------------- *)

let expect_witness name = function
  | Check.Verified _ -> Alcotest.failf "%s: expected a violation" name
  | Check.Unknown _ -> Alcotest.failf "%s: unexpected Unknown" name
  | Check.Falsified v -> (
    match v.Check.witness with
    | Some w -> (v, w)
    | None -> Alcotest.failf "%s: violation carries no witness" name)

let test_stale_registers_break_tas_protocol () =
  let impl = Protocols.from_tas () in
  let faults = Wfc_sim.Faults.degrade_all impl ~glitches:2 (`Stale 1) in
  let _v, w = expect_witness "tas+stale" (Check.verify ~faults impl) in
  (* the shrunk witness replays deterministically to a violating leaf *)
  match Wfc_sim.Witness.replay impl w with
  | Error e -> Alcotest.failf "witness replay failed: %s" e
  | Ok leaf -> (
    match leaf.Wfc_sim.Exec.ops with
    | [] -> Alcotest.fail "witness leaf has no completed ops"
    | o0 :: rest ->
      let agreement =
        List.for_all
          (fun (o : Wfc_sim.Exec.op) -> Value.equal o.resp o0.Wfc_sim.Exec.resp)
          rest
      in
      let proposals =
        Array.to_list w.Wfc_sim.Witness.workloads
        |> List.concat_map (function
             | inv :: _ -> (
               match Ops.propose_arg inv with
               | v -> [ v ]
               | exception Value.Type_error _ -> [])
             | [] -> [])
      in
      let validity =
        List.exists (Value.equal o0.Wfc_sim.Exec.resp) proposals
      in
      Alcotest.(check bool) "violation reproduced by replay" true
        (not (agreement && validity)))

let test_safe_registers_break_tas_protocol () =
  let impl = Protocols.from_tas () in
  let faults = Wfc_sim.Faults.degrade_all impl ~glitches:1 `Safe in
  let _v, w = expect_witness "tas+safe" (Check.verify ~faults impl) in
  Alcotest.(check bool) "witness trace non-empty" true
    (w.Wfc_sim.Witness.trace <> [])

(* --- the acceptance path: broken protocol → shrunk, replayable witness ----- *)

let test_broken_register_only_witness () =
  let impl = Protocols.broken_register_only () in
  let v, w = expect_witness "broken" (Check.verify impl) in
  (* shrinking dropped the repeat proposals: one propose per participant,
     and a short decision trace *)
  Array.iter
    (fun wl ->
      Alcotest.(check bool) "≤ 1 invocation per process after shrinking" true
        (List.length wl <= 1))
    w.Wfc_sim.Witness.workloads;
  Alcotest.(check bool) "short trace" true
    (List.length w.Wfc_sim.Witness.trace <= 6);
  Alcotest.(check bool) "reason mentions agreement or validity" true
    (v.Check.reason <> "");
  (* replay reproduces the same violation *)
  (match Wfc_sim.Witness.replay impl w with
  | Error e -> Alcotest.failf "replay failed: %s" e
  | Ok leaf -> (
    match leaf.Wfc_sim.Exec.ops with
    | (o0 : Wfc_sim.Exec.op) :: rest ->
      Alcotest.(check bool) "disagreement reproduced" true
        (not
           (List.for_all
              (fun (o : Wfc_sim.Exec.op) -> Value.equal o.resp o0.resp)
              rest))
    | [] -> Alcotest.fail "no ops on replayed leaf"));
  (* the witness survives a serialization round-trip *)
  match Wfc_sim.Witness.of_string (Wfc_sim.Witness.to_string w) with
  | Error e -> Alcotest.failf "round-trip: %s" e
  | Ok w' -> (
    Alcotest.(check bool) "same trace after round-trip" true
      (w'.Wfc_sim.Witness.trace = w.Wfc_sim.Witness.trace);
    match Wfc_sim.Witness.replay impl w' with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "round-tripped replay failed: %s" e)

let test_trace_text_roundtrip () =
  let open Wfc_sim.Faults in
  let trace =
    [
      { proc = 0; kind = Step 1 };
      { proc = 1; kind = Glitch 0 };
      { proc = 1; kind = Crash };
      { proc = 1; kind = Recover };
      { proc = 0; kind = Wedge };
    ]
  in
  match trace_of_string (trace_to_string trace) with
  | Ok t -> Alcotest.(check bool) "round-trip" true (t = trace)
  | Error e -> Alcotest.fail e

(* --- regularity checker: degraded adversary yields a replayable witness ---- *)

let test_register_props_witness_under_staleness () =
  let impl = Implementation.identity (Register.bit ~ports:2) ~procs:2 in
  let faults = Wfc_sim.Faults.degrade_all impl ~glitches:1 (`Stale 1) in
  match
    Wfc_linearize.Register_props.check_all_regular impl ~init:Value.falsity
      ~workloads:[| [ Ops.write Value.truth ]; [ Ops.read; Ops.read ] |]
      ~faults ()
  with
  | Ok _ -> Alcotest.fail "stale reads must break regularity"
  | Error viol -> (
    match viol.Wfc_linearize.Register_props.witness with
    | None -> Alcotest.fail "violation carries no witness"
    | Some w -> (
      match Wfc_sim.Witness.replay impl w with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "replay failed: %s" e))

(* --- graceful degradation: budgets and deadlines --------------------------- *)

let test_budget_returns_unknown () =
  match Check.verify ~budget:50 (Protocols.from_tas ()) with
  | Check.Unknown { partial; reason } ->
    Alcotest.(check bool) "reason mentions budget" true
      (reason = "node budget exhausted");
    Alcotest.(check bool) "partial progress reported" true
      (partial.Check.executions >= 0 && partial.Check.vectors >= 1)
  | Check.Verified _ -> Alcotest.fail "50 nodes cannot verify tas"
  | Check.Falsified v -> Alcotest.failf "unexpected: %a" Check.pp_violation v

let test_zero_deadline_returns_unknown () =
  match Check.verify ~deadline_s:0. (Protocols.from_tas ()) with
  | Check.Unknown { reason; _ } ->
    Alcotest.(check string) "reason" "deadline exceeded" reason
  | _ -> Alcotest.fail "expired deadline must yield Unknown"

let test_explore_partial_never_hangs () =
  let impl = Protocols.from_sticky ~procs:3 () in
  let workloads =
    Array.init 3 (fun p -> [ Ops.propose (Value.bool (p mod 2 = 0)) ])
  in
  let stats =
    Wfc_sim.Explore.run impl ~workloads ~budget:10
      ~options:Wfc_sim.Explore.naive ()
  in
  (match stats.Wfc_sim.Explore.completeness with
  | Wfc_sim.Explore.Partial Wfc_sim.Explore.Budget_exhausted -> ()
  | c ->
    Alcotest.failf "expected budget-partial, got %a"
      Wfc_sim.Explore.pp_completeness c);
  Alcotest.(check bool) "stopped promptly" true
    (stats.Wfc_sim.Explore.nodes <= 20)

let test_access_bounds_budget_incomplete () =
  match Access_bounds.analyze ~budget:5 (Protocols.from_tas ()) with
  | Ok _ -> Alcotest.fail "5 nodes cannot bound tas"
  | Error e ->
    Alcotest.(check bool) "reports incompleteness, claims no bound" true
      (String.length e > 0
      && String.sub e 0 (min 19 (String.length e)) = "analysis incomplete")

(* --- engine parity under faults -------------------------------------------- *)

let test_exec_explore_parity_under_faults () =
  let impl = Protocols.from_tas () in
  let workloads =
    [| [ Ops.propose Value.truth ]; [ Ops.propose Value.falsity ] |]
  in
  let faults = Wfc_sim.Faults.crash_recovery ~crashes:1 ~recoveries:1 in
  let naive_leaves = ref 0 in
  let exec_stats =
    Wfc_sim.Exec.explore impl ~workloads ~faults
      ~on_leaf:(fun _ -> incr naive_leaves)
      ()
  in
  let explore_leaves = ref 0 in
  let explore_stats =
    Wfc_sim.Explore.run impl ~workloads ~faults
      ~options:Wfc_sim.Explore.naive
      ~on_leaf:(fun _ -> incr explore_leaves)
      ()
  in
  Alcotest.(check int)
    "same leaf count" exec_stats.Wfc_sim.Exec.leaves
    explore_stats.Wfc_sim.Explore.leaves;
  Alcotest.(check int) "on_leaf parity" !naive_leaves !explore_leaves;
  Alcotest.(check int)
    "same node count" exec_stats.Wfc_sim.Exec.nodes
    explore_stats.Wfc_sim.Explore.nodes

let test_crash_budget_merges_with_faults () =
  (* legacy ?max_crashes and ?faults compose: the larger budget wins *)
  let impl = Protocols.from_tas () in
  let workloads =
    [| [ Ops.propose Value.truth ]; [ Ops.propose Value.falsity ] |]
  in
  let with_faults =
    Wfc_sim.Exec.explore impl ~workloads
      ~faults:(Wfc_sim.Faults.crashes 1) ()
  in
  let with_legacy = Wfc_sim.Exec.explore impl ~workloads ~max_crashes:1 () in
  Alcotest.(check int)
    "identical tree" with_legacy.Wfc_sim.Exec.leaves
    with_faults.Wfc_sim.Exec.leaves

let () =
  Alcotest.run "wfc_faults"
    [
      ( "crash-recovery",
        [
          Alcotest.test_case "protocols survive" `Slow
            test_protocols_survive_crash_recovery;
          Alcotest.test_case "Theorem 5 pipeline survives" `Slow
            test_theorem5_pipeline_survives_faults;
        ] );
      ( "degraded registers",
        [
          Alcotest.test_case "stale reads break tas protocol" `Quick
            test_stale_registers_break_tas_protocol;
          Alcotest.test_case "safe reads break tas protocol" `Quick
            test_safe_registers_break_tas_protocol;
          Alcotest.test_case "regularity witness under staleness" `Quick
            test_register_props_witness_under_staleness;
        ] );
      ( "witnesses",
        [
          Alcotest.test_case "broken protocol: shrunk replayable witness"
            `Quick test_broken_register_only_witness;
          Alcotest.test_case "trace text round-trip" `Quick
            test_trace_text_roundtrip;
        ] );
      ( "graceful degradation",
        [
          Alcotest.test_case "budget → Unknown" `Quick
            test_budget_returns_unknown;
          Alcotest.test_case "deadline → Unknown" `Quick
            test_zero_deadline_returns_unknown;
          Alcotest.test_case "Explore.run partial, never hangs" `Quick
            test_explore_partial_never_hangs;
          Alcotest.test_case "Access_bounds budget → incomplete" `Quick
            test_access_bounds_budget_incomplete;
        ] );
      ( "engine parity",
        [
          Alcotest.test_case "Exec.explore ≡ Explore.run naive under faults"
            `Quick test_exec_explore_parity_under_faults;
          Alcotest.test_case "max_crashes ≡ Faults.crashes" `Quick
            test_crash_budget_merges_with_faults;
        ] );
    ]
