(* E14 — flat-state hot path: the flat engine (fixed-width fingerprints in
   an open-addressing table) must be observationally identical to the boxed
   interned-key engine — same node/leaf counts, same observations, same
   downstream verdicts including under fault adversaries — the Bloom second
   tier must only ever prune (never flip a Falsified verdict, always
   downgrade a clean sweep), and the fingerprint structures themselves are
   fuzzed against oracles. *)

open Wfc_spec
open Wfc_zoo
open Wfc_consensus
open Wfc_program
module Exec = Wfc_sim.Exec
module Explore = Wfc_sim.Explore
module Faults = Wfc_sim.Faults
module Witness = Wfc_sim.Witness

let value = Alcotest.testable Value.pp Value.equal

(* Timing-insensitive leaf projection (same as test_explore's): ops keyed by
   ⟨proc, op_index⟩, timestamps dropped. *)
let value_proj (leaf : Exec.leaf) =
  let ops =
    List.sort
      (fun (a : Exec.op) (b : Exec.op) ->
        compare (a.proc, a.op_index) (b.proc, b.op_index))
      leaf.ops
  in
  Value.list
    [
      Value.list (Array.to_list leaf.objects);
      Value.list (Array.to_list leaf.locals);
      Value.list
        (List.map
           (fun (o : Exec.op) ->
             Value.list
               [
                 Value.int o.proc;
                 Value.int o.op_index;
                 o.inv;
                 o.resp;
                 Value.int o.steps;
               ])
           ops);
      Value.int leaf.events;
      Value.list (List.map Value.int (Array.to_list leaf.accesses));
    ]

(* --- fixture: the randomized register machine from test_explore ------------ *)

let rw_impl ~procs ~bits ~coin =
  let bit = Register.bit ~ports:procs in
  let coin_spec = Nondet.coin ~ports:procs in
  let objects =
    List.init bits (fun _ -> (bit, Value.falsity))
    @ (if coin then [ (coin_spec, coin_spec.Type_spec.initial) ] else [])
  in
  Implementation.make
    ~target:(Register.bit ~ports:procs)
    ~procs ~objects
    ~local_init:(fun _ -> Value.falsity)
    ~program:(fun ~proc:_ ~inv local ->
      let open Program.Syntax in
      match inv with
      | Value.Pair (Value.Sym "wr", Value.Pair (Value.Int o, b)) ->
        let+ _ = Program.invoke ~obj:o (Ops.write b) in
        (Ops.ok, local)
      | Value.Pair (Value.Sym "rd", Value.Int o) ->
        let+ v = Program.invoke ~obj:o Ops.read in
        (v, v)
      | Value.Pair (Value.Sym "cp", Value.Pair (Value.Int a, Value.Int b)) ->
        let* v = Program.invoke ~obj:a Ops.read in
        let+ _ = Program.invoke ~obj:b (Ops.write v) in
        (v, local)
      | Value.Sym "flip" ->
        let+ v = Program.invoke ~obj:bits Ops.read in
        (v, v)
      | Value.Sym "loc" -> Program.return (local, local)
      | _ -> Alcotest.fail "rw_impl: bad invocation")
    ()

let wr o b = Value.pair (Value.sym "wr") (Value.pair (Value.int o) (Value.bool b))
let rd o = Value.pair (Value.sym "rd") (Value.int o)
let cp a b = Value.pair (Value.sym "cp") (Value.pair (Value.int a) (Value.int b))

let collect ?faults ?(dedup_threshold = 0) ?bloom_bits_log2 ?mem_budget_mb
    ~options impl workloads =
  let acc = ref [] in
  let stats =
    Explore.run impl ~workloads ?faults ~options ~par_threshold:0
      ~dedup_threshold ?bloom_bits_log2 ?mem_budget_mb
      ~on_leaf:(fun leaf -> acc := value_proj leaf :: !acc)
      ()
  in
  (stats, List.sort Value.compare !acc)

(* --- flat vs boxed engine parity ------------------------------------------- *)

(* The flat encoding carries exactly the information of the boxed interned
   key (cell ids are unique within an intern state), so the two engines must
   make identical pruning decisions: every count matches, not just the
   observation set. *)
let assert_flat_boxed_parity ?faults ~msg impl workloads =
  List.iter
    (fun (sub, flat_opts) ->
      let boxed_opts = { flat_opts with Explore.flat = false } in
      let sf, lf = collect ?faults ~options:flat_opts impl workloads in
      let sb, lb = collect ?faults ~options:boxed_opts impl workloads in
      let msg = msg ^ "/" ^ sub in
      Alcotest.(check int) (msg ^ ": nodes") sb.Explore.nodes sf.Explore.nodes;
      Alcotest.(check int) (msg ^ ": leaves") sb.Explore.leaves
        sf.Explore.leaves;
      Alcotest.(check int) (msg ^ ": pruned") sb.Explore.pruned
        sf.Explore.pruned;
      Alcotest.(check int)
        (msg ^ ": sleep_skips")
        sb.Explore.sleep_skips sf.Explore.sleep_skips;
      Alcotest.(check int) (msg ^ ": max_events") sb.Explore.max_events
        sf.Explore.max_events;
      Alcotest.(check (array int))
        (msg ^ ": max_accesses")
        sb.Explore.max_accesses sf.Explore.max_accesses;
      Alcotest.(check (list value)) (msg ^ ": observations") lb lf)
    [
      ("fast", { Explore.fast with symmetry = false });
      ("fast+symmetry", Explore.fast);
      ("dedup-only", { Explore.naive with dedup = true; intern = true;
                       flat = true });
    ]

let test_parity_fixed () =
  let impl = rw_impl ~procs:3 ~bits:2 ~coin:false in
  assert_flat_boxed_parity ~msg:"fixed" impl
    [| [ wr 0 true; rd 1 ]; [ cp 0 1 ]; [ rd 0; wr 1 false ] |]

let test_parity_faults () =
  let impl = rw_impl ~procs:2 ~bits:2 ~coin:false in
  assert_flat_boxed_parity
    ~faults:
      {
        Faults.max_crashes = 1;
        max_recoveries = 1;
        max_glitches = 0;
        degraded = [ (0, Faults.Stale_reads 1) ];
      }
    ~msg:"faults" impl
    [| [ wr 0 true; rd 1 ]; [ cp 0 1; rd 0 ] |]

let gen_workloads =
  let open QCheck.Gen in
  let* procs = int_range 2 3 in
  let* bits = int_range 1 2 in
  let* coin = if procs = 2 then bool else return false in
  let op =
    frequency
      [
        (3, map2 (fun o b -> wr o b) (int_range 0 (bits - 1)) bool);
        (3, map (fun o -> rd o) (int_range 0 (bits - 1)));
        ( 2,
          map2
            (fun a b -> cp a b)
            (int_range 0 (bits - 1))
            (int_range 0 (bits - 1)) );
        (1, return (Value.sym "loc"));
        ((if coin then 2 else 0), return (Value.sym "flip"));
      ]
  in
  let+ wls = array_size (return procs) (list_size (int_range 0 2) op) in
  (procs, bits, coin, wls)

let prop_parity =
  QCheck.Test.make ~count:40
    ~name:"flat and boxed engines agree exactly on random workloads"
    (QCheck.make gen_workloads ~print:(fun (procs, bits, coin, wls) ->
         Fmt.str "procs=%d bits=%d coin=%b workloads=%a" procs bits coin
           Fmt.(array (list Value.pp))
           wls))
    (fun (procs, bits, coin, wls) ->
      let impl = rw_impl ~procs ~bits ~coin in
      assert_flat_boxed_parity ~msg:"qcheck" impl wls;
      true)

(* --- compiled step tables vs the interpreted spec --------------------------- *)

(* [Step_table.alternatives] must agree with [Type_spec.alternatives] on
   every (state, port, invocation) of every zoo type — same pairs, same
   order — on both the compiling first lookup and the cached second one.
   Disabled invocations (discipline-typed specs) agree on the empty list;
   out-of-range ports raise [Bad_step] on both sides. Nondeterministic
   specs are in the sweep: rows cache the whole alternative list. *)

let states_of (spec : Type_spec.t) =
  match spec.Type_spec.states with
  | Some qs -> qs
  | None ->
    Value.Set.elements (Type_spec.reachable spec ~from:spec.Type_spec.initial)

let check_alts_equal ~msg interp compiled =
  Alcotest.(check int) (msg ^ ": arity") (List.length interp)
    (List.length compiled);
  List.iter2
    (fun (q1, r1) (q2, r2) ->
      Alcotest.check value (msg ^ ": successor") q1 q2;
      Alcotest.check value (msg ^ ": response") r1 r2)
    interp compiled

let test_step_table_agrees_with_zoo () =
  List.iter
    (fun (e : Wfc_zoo.Catalog.entry) ->
      let spec = e.Wfc_zoo.Catalog.spec in
      let tbl = Step_table.create spec in
      let name = spec.Type_spec.name in
      List.iter
        (fun q ->
          for port = 0 to spec.Type_spec.ports - 1 do
            List.iter
              (fun inv ->
                let msg = Fmt.str "%s q=%a p%d %a" name Value.pp q port
                    Value.pp inv
                in
                let interp = Type_spec.alternatives spec q ~port ~inv in
                check_alts_equal ~msg interp
                  (Step_table.alternatives tbl q ~port ~inv);
                (* second lookup hits the cached row *)
                check_alts_equal ~msg:(msg ^ " (cached)") interp
                  (Step_table.alternatives tbl q ~port ~inv))
              spec.Type_spec.invocations
          done)
        (states_of spec);
      List.iter
        (fun port ->
          match
            Step_table.alternatives tbl spec.Type_spec.initial ~port
              ~inv:(List.hd spec.Type_spec.invocations)
          with
          | exception Type_spec.Bad_step _ -> ()
          | _ -> Alcotest.failf "%s: port %d accepted" name port)
        [ -1; spec.Type_spec.ports ])
    (Wfc_zoo.Catalog.all ~ports:2)

(* --- compiled kernel vs interpreted engine ---------------------------------- *)

(* The compiled kernel (step tables + in-place configuration) must be
   observationally identical to the interpreted engine it replaces: every
   count, every observation, with and without POR/dedup. *)
let assert_compiled_interp_parity ~msg impl workloads =
  List.iter
    (fun (sub, opts) ->
      let sc, lc = collect ~options:opts impl workloads in
      let si, li =
        collect ~options:{ opts with Explore.compile = false } impl workloads
      in
      let msg = msg ^ "/" ^ sub in
      Alcotest.(check int) (msg ^ ": nodes") si.Explore.nodes sc.Explore.nodes;
      Alcotest.(check int) (msg ^ ": leaves") si.Explore.leaves
        sc.Explore.leaves;
      Alcotest.(check int) (msg ^ ": pruned") si.Explore.pruned
        sc.Explore.pruned;
      Alcotest.(check int)
        (msg ^ ": sleep_skips")
        si.Explore.sleep_skips sc.Explore.sleep_skips;
      Alcotest.(check int) (msg ^ ": max_events") si.Explore.max_events
        sc.Explore.max_events;
      Alcotest.(check (array int))
        (msg ^ ": max_accesses")
        si.Explore.max_accesses sc.Explore.max_accesses;
      Alcotest.(check (list value)) (msg ^ ": observations") li lc)
    [
      ("fast", { Explore.fast with symmetry = false });
      ("fast+symmetry", Explore.fast);
      ( "por-only",
        { Explore.naive with por = true; intern = true; flat = true;
          compile = true } );
      ( "plain",
        { Explore.naive with intern = true; flat = true; compile = true } );
    ]

let test_compile_parity_fixed () =
  let impl = rw_impl ~procs:3 ~bits:2 ~coin:false in
  assert_compiled_interp_parity ~msg:"fixed" impl
    [| [ wr 0 true; rd 1 ]; [ cp 0 1 ]; [ rd 0; wr 1 false ] |]

let prop_compile_parity =
  QCheck.Test.make ~count:40
    ~name:"compiled and interpreted engines agree exactly on random workloads"
    (QCheck.make gen_workloads ~print:(fun (procs, bits, coin, wls) ->
         Fmt.str "procs=%d bits=%d coin=%b workloads=%a" procs bits coin
           Fmt.(array (list Value.pp))
           wls))
    (fun (procs, bits, coin, wls) ->
      let impl = rw_impl ~procs ~bits ~coin in
      assert_compiled_interp_parity ~msg:"qcheck" impl wls;
      true)

(* --- downstream verdict parity --------------------------------------------- *)

let flat_engine = Explore.fast
let boxed_engine = { Explore.fast with Explore.flat = false }

let test_verdict_parity () =
  List.iter
    (fun (name, impl, faults) ->
      let verify engine =
        Check.verify ~engine ?faults ~subsets:false (impl ())
      in
      match (verify flat_engine, verify boxed_engine) with
      | Check.Verified a, Check.Verified b ->
        Alcotest.(check int)
          (name ^ ": executions")
          b.Check.executions a.Check.executions
      | Check.Falsified vf, Check.Falsified _ -> (
        (* a flat-engine violation must replay: its witness is real *)
        match vf.Check.witness with
        | None -> ()
        | Some w -> (
          match Witness.replay (impl ()) w with
          | Ok _ -> ()
          | Error e ->
            Alcotest.failf "%s: flat witness does not replay: %s" name e))
      | vf, vb ->
        Alcotest.failf "%s: verdicts disagree: flat %a, boxed %a" name
          Check.pp_verdict vf Check.pp_verdict vb)
    [
      ("cas3", (fun () -> Protocols.from_cas ~procs:3 ()), None);
      ( "cas2+crash",
        (fun () -> Protocols.from_cas ~procs:2 ()),
        Some (Faults.crashes 1) );
      ("broken", Protocols.broken_register_only, None);
    ]

let test_verdict_parity_no_compile () =
  List.iter
    (fun (name, impl, expected) ->
      let verdict engine =
        match Check.verify ~engine ~subsets:false (impl ()) with
        | Check.Verified _ -> "verified"
        | Check.Falsified _ -> "falsified"
        | Check.Unknown _ -> "unknown"
      in
      let on = verdict Explore.fast in
      let off = verdict { Explore.fast with Explore.compile = false } in
      Alcotest.(check string) (name ^ ": compile on") expected on;
      Alcotest.(check string) (name ^ ": compile off") expected off)
    [
      ("cas3", (fun () -> Protocols.from_cas ~procs:3 ()), "verified");
      ("sticky3", (fun () -> Protocols.from_sticky ~procs:3 ()), "verified");
      ("broken", Protocols.broken_register_only, "falsified");
    ]

(* --- Bloom tier soundness --------------------------------------------------- *)

(* With [mem_budget_mb:0] the watchdog trips on its first sample and the
   flat path runs on the Bloom tier. A false positive can only prune: the
   leaf set shrinks (or stays equal), a clean sweep is downgraded to
   [Partial Probabilistic], and a found violation is still a real
   violation. [bits_log2 = 6] (64 bits) forces a high FP rate. *)
let test_bloom_only_prunes () =
  let impl = rw_impl ~procs:3 ~bits:2 ~coin:false in
  let wls = [| [ wr 0 true; rd 1 ]; [ cp 0 1 ]; [ rd 0; wr 1 false ] |] in
  let exact, exact_leaves =
    collect ~options:{ Explore.fast with symmetry = false } impl wls
  in
  let bloom, bloom_leaves =
    collect
      ~options:{ Explore.fast with symmetry = false }
      ~mem_budget_mb:0 ~bloom_bits_log2:6 impl wls
  in
  (match bloom.Explore.completeness with
  | Explore.Partial Explore.Probabilistic -> ()
  | c ->
    Alcotest.failf "Bloom tier must report Probabilistic, got %a"
      Explore.pp_completeness c);
  Alcotest.(check bool) "evicted to tier 2" true (bloom.Explore.evictions >= 1);
  Alcotest.(check bool) "prune-only: no more nodes" true
    (bloom.Explore.nodes <= exact.Explore.nodes);
  Alcotest.(check bool) "prune-only: no more leaves" true
    (bloom.Explore.leaves <= exact.Explore.leaves);
  List.iter
    (fun l ->
      Alcotest.(check bool) "Bloom observations ⊆ exact observations" true
        (List.exists (Value.equal l) exact_leaves))
    bloom_leaves

let test_bloom_tier_verdicts () =
  (* a clean protocol on the Bloom tier must never claim Verified *)
  (match
     Check.verify ~engine:flat_engine ~mem_budget_mb:0 ~subsets:false
       (Protocols.from_cas ~procs:3 ())
   with
  | Check.Unknown { reason; _ } ->
    Alcotest.(check string)
      "downgraded reason" "probabilistic dedup (memory budget)" reason
  | Check.Verified _ ->
    Alcotest.fail "Bloom-tier run claimed an exhaustive Verified"
  | Check.Falsified v ->
    Alcotest.failf "clean protocol falsified: %a" Check.pp_violation v);
  (* a broken protocol must stay Falsified — FPs cannot invent a verdict,
     and at the default filter size they prune essentially nothing *)
  match
    Check.verify ~engine:flat_engine ~mem_budget_mb:0 ~subsets:false
      (Protocols.broken_register_only ())
  with
  | Check.Falsified v -> (
    match v.Check.witness with
    | None -> ()
    | Some w -> (
      match Witness.replay (Protocols.broken_register_only ()) w with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "Bloom-tier witness does not replay: %s" e))
  | v ->
    Alcotest.failf "broken protocol not falsified on Bloom tier: %a"
      Check.pp_verdict v

(* --- open-addressing table vs Hashtbl oracle -------------------------------- *)

let gen_fp_pairs =
  QCheck.Gen.(
    let lane =
      oneof [ int_bound 3; map (fun n -> n land max_int) int ]
    in
    list_size (int_range 0 400) (pair lane lane))

let prop_table_oracle =
  QCheck.Test.make ~count:100
    ~name:"Fingerprint.Table matches a Hashtbl oracle"
    (QCheck.make gen_fp_pairs
       ~print:(fun ps -> Fmt.str "%d pairs" (List.length ps)))
    (fun pairs ->
      (* tiny initial capacity: growth is exercised on almost every case *)
      let t = Fingerprint.Table.create ~capacity_log2:2 () in
      let oracle = Hashtbl.create 16 in
      List.for_all
        (fun (hi, lo) ->
          (* the table documents the ⟨0,0⟩ → ⟨0,1⟩ remap; mirror it *)
          let key = if hi = 0 && lo = 0 then (0, 1) else (hi, lo) in
          let expect = Hashtbl.mem oracle key in
          let got = Fingerprint.Table.mem_or_add t ~hi ~lo in
          Hashtbl.replace oracle key ();
          got = expect && Fingerprint.Table.length t = Hashtbl.length oracle)
        pairs)

let test_table_iter_complete () =
  let t = Fingerprint.Table.create ~capacity_log2:2 () in
  let n = 100 in
  for i = 1 to n do
    ignore (Fingerprint.Table.mem_or_add t ~hi:(i * 7919) ~lo:(i * 104729))
  done;
  let seen = Hashtbl.create n in
  Fingerprint.Table.iter (fun ~hi ~lo -> Hashtbl.replace seen (hi, lo) ()) t;
  Alcotest.(check int) "iter visits every stored fingerprint" n
    (Hashtbl.length seen)

(* --- Bloom filter: no false negatives --------------------------------------- *)

let test_bloom_no_false_negatives () =
  let bl = Fingerprint.Bloom.create ~bits_log2:12 () in
  let rng = Random.State.make [| 0xB10F11 |] in
  let keys =
    List.init 300 (fun _ ->
        (Random.State.full_int rng max_int, Random.State.full_int rng max_int))
  in
  List.iter
    (fun (hi, lo) -> ignore (Fingerprint.Bloom.mem_or_add bl ~hi ~lo))
    keys;
  List.iter
    (fun (hi, lo) ->
      Alcotest.(check bool) "inserted key reports possibly-seen" true
        (Fingerprint.Bloom.mem_or_add bl ~hi ~lo))
    keys

(* --- fingerprint hashing sanity --------------------------------------------- *)

let test_hash_sensitivity () =
  let h = Fingerprint.hash_array in
  Alcotest.(check bool) "order-sensitive" true
    (h [| 1; 2; 3 |] ~len:3 <> h [| 3; 2; 1 |] ~len:3);
  Alcotest.(check bool) "length-sensitive" true
    (h [| 1; 2; 3 |] ~len:2 <> h [| 1; 2; 3 |] ~len:3);
  Alcotest.(check bool) "prefix-stable" true
    (h [| 1; 2; 99 |] ~len:2 = h [| 1; 2; 0 |] ~len:2);
  let hi, lo = h [| 5; 6; 7 |] ~len:3 in
  Alcotest.(check bool) "lanes non-negative" true (hi >= 0 && lo >= 0);
  Alcotest.(check bool) "lanes independent" true (hi <> lo);
  Alcotest.(check bool) "string digest deterministic" true
    (Fingerprint.hash_string "wfc" = Fingerprint.hash_string "wfc");
  Alcotest.(check bool) "string digest separates" true
    (Fingerprint.hash_string "wfc-checkpoint/1"
    <> Fingerprint.hash_string "wfc-checkpoint/2")

let () =
  Alcotest.run "wfc_flat"
    [
      ( "flat/boxed parity",
        [
          Alcotest.test_case "fixed workloads" `Quick test_parity_fixed;
          Alcotest.test_case "under a fault adversary" `Quick
            test_parity_faults;
          QCheck_alcotest.to_alcotest prop_parity;
        ] );
      ( "compiled step tables",
        [
          Alcotest.test_case "agree with Type_spec across the zoo" `Quick
            test_step_table_agrees_with_zoo;
          Alcotest.test_case "compiled kernel parity (fixed)" `Quick
            test_compile_parity_fixed;
          QCheck_alcotest.to_alcotest prop_compile_parity;
        ] );
      ( "verdict parity",
        [
          Alcotest.test_case "Check.verify agrees" `Quick test_verdict_parity;
          Alcotest.test_case "Check.verify agrees with compile off" `Quick
            test_verdict_parity_no_compile;
        ] );
      ( "bloom tier",
        [
          Alcotest.test_case "only prunes, downgrades completeness" `Quick
            test_bloom_only_prunes;
          Alcotest.test_case "verdict soundness" `Quick
            test_bloom_tier_verdicts;
          Alcotest.test_case "no false negatives" `Quick
            test_bloom_no_false_negatives;
        ] );
      ( "fingerprint structures",
        [
          QCheck_alcotest.to_alcotest prop_table_oracle;
          Alcotest.test_case "iter is complete" `Quick test_table_iter_complete;
          Alcotest.test_case "hash sensitivity" `Quick test_hash_sensitivity;
        ] );
    ]
