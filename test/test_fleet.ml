(* Fleet tests — the wfc-fleet/2 wire codec (round-trip and totality under
   byte fuzz), checkpoint split/merge and torn-write rejection, chaos plan
   specs, reconnect backoff, and chaos-parity integration: a forked worker
   pool driven through kill/stall/garbage/delayed-ack faults must produce
   the same verdict as single-process Check.verify. Wire-level (network)
   chaos and the job queue live in test_netfleet.ml. *)

open Wfc_spec
module Checkpoint = Wfc_sim.Checkpoint
module Faults = Wfc_sim.Faults
module Witness = Wfc_sim.Witness
module Codec = Wfc_fleet.Codec
module Chaos = Wfc_fleet.Chaos
module Backoff = Wfc_fleet.Backoff
module Coordinator = Wfc_fleet.Coordinator
module Local = Wfc_fleet.Local
module Check = Wfc_consensus.Check
module Protocols = Wfc_consensus.Protocols

(* --- shared fixtures ------------------------------------------------------- *)

let engine =
  {
    Checkpoint.dedup = true;
    por = true;
    domains = 1;
    intern = true;
    symmetry = false;
    flat = false;
  }

let sample_faults =
  {
    Faults.max_crashes = 1;
    max_recoveries = 0;
    max_glitches = 1;
    degraded = [ (0, Faults.Stale_reads 2) ];
  }

let sample_trace =
  [
    { Faults.proc = 0; kind = Faults.Step 1 };
    { Faults.proc = 1; kind = Faults.Crash };
    { Faults.proc = 0; kind = Faults.Glitch 0 };
  ]

let workloads2 = [| [ Value.truth ]; [ Value.falsity ] |]

let mk_counts n =
  {
    Checkpoint.leaves = n;
    nodes = 10 * n;
    max_events = 4 + n;
    max_op_steps = 2;
    max_accesses = [| n; 2 * n |];
    overflows = 0;
    pruned = n / 2;
    sleep_skips = 0;
    degraded = 0;
    evictions = 0;
    spilled = 0;
    probabilistic = false;
  }

let mk_ck ?(meta = [ ("protocol", "sticky"); ("procs", "2") ]) ?(frontier = [])
    ?counts () =
  let counts =
    match counts with Some c -> c | None -> Checkpoint.zero_counts ~n_objs:2
  in
  Checkpoint.make ~meta ~engine ~fuel:64 ~budget_left:123 ~faults:sample_faults
    ~workloads:workloads2 ~counts ~frontier ()

let sample_witness = Witness.make ~workloads:workloads2 ~faults:sample_faults sample_trace

let sample_msgs =
  [
    Codec.Hello { pid = 4242; name = "worker-a"; token = "w4242.00abcd" };
    Codec.Hello { pid = 1; name = "name with\nnewline"; token = "t" };
    Codec.Lease
      { shard = 7; lease_s = 2.5; quantum = 5000; job = mk_ck () };
    Codec.Lease
      {
        shard = 0;
        lease_s = 0.25;
        quantum = 1;
        job = mk_ck ~frontier:[ sample_trace; [] ] ();
      };
    Codec.Heartbeat { shard = -1; nodes = 0 };
    Codec.Heartbeat { shard = 3; nodes = 99_999 };
    Codec.Progress { shard = 12; nodes = 1000; leaves = 37 };
    Codec.Result { shard = 5; outcome = Codec.Done (mk_ck ~counts:(mk_counts 6) ()) };
    Codec.Result
      {
        shard = 6;
        outcome = Codec.Violation { reason = "agreement broken"; witness = sample_witness };
      };
    Codec.Result { shard = 8; outcome = Codec.Refused "unknown protocol zork" };
    Codec.Steal { shard = 2 };
    Codec.Shutdown { reason = "run complete" };
    Codec.Shutdown { reason = "multi\nline\nreason" };
  ]

(* --- codec round-trips ----------------------------------------------------- *)

(* Messages embed checkpoints and witnesses, which have no structural
   equality; the codec's own canonical text is the comparison key (encode
   flattens newlines, so encode ∘ decode ∘ encode is the identity on
   encoded text). *)
let check_roundtrip m =
  let s = Codec.encode m in
  match Codec.decode s with
  | Error e -> Alcotest.failf "decode (%a) failed: %s" Codec.pp_msg m e
  | Ok m' -> Alcotest.(check string) "re-encode" s (Codec.encode m')

let test_codec_roundtrip_each () = List.iter check_roundtrip sample_msgs

let test_codec_newline_flattening () =
  match
    Codec.decode
      (Codec.encode (Codec.Hello { pid = 9; name = "a\nb"; token = "t9" }))
  with
  | Ok (Codec.Hello { name; _ }) ->
    Alcotest.(check string) "flattened" "a b" name
  | Ok m -> Alcotest.failf "wrong message: %a" Codec.pp_msg m
  | Error e -> Alcotest.failf "decode failed: %s" e

let test_codec_rejects () =
  let bad =
    [
      "";
      "wfc-fleet/9 hello";
      (* v1 speakers have no session token: refused at the header *)
      "wfc-fleet/1 hello\npid 1\nname a";
      "wfc-fleet/2 nonsense";
      "wfc-fleet/2 hello";
      (* missing token *)
      "wfc-fleet/2 hello\npid 1\nname a";
      (* missing fields *)
      "wfc-fleet/2 lease\nshard 1\nlease 1.0\nquantum 5";
      (* no job blob *)
      "wfc-fleet/2 result\nshard 1\noutcome done\n--\ngarbage blob";
    ]
  in
  List.iter
    (fun s ->
      match Codec.decode s with
      | Ok m -> Alcotest.failf "accepted %S as %a" s Codec.pp_msg m
      | Error _ -> ())
    bad

let arb_msg =
  let open QCheck in
  let gen =
    let open Gen in
    let name = string_size ~gen:printable (int_range 0 16) in
    let ck =
      oneofl
        [
          mk_ck ();
          mk_ck ~frontier:[ sample_trace ] ();
          mk_ck ~counts:(mk_counts 3) ~meta:[ ("k", "v"); ("protocol", "tas") ] ();
        ]
    in
    let outcome =
      oneof
        [
          map (fun c -> Codec.Done c) ck;
          map
            (fun r -> Codec.Violation { reason = r; witness = sample_witness })
            name;
          map (fun r -> Codec.Refused r) name;
        ]
    in
    oneof
      [
        map3
          (fun pid name token -> Codec.Hello { pid; name; token })
          small_nat name name;
        map3
          (fun shard quantum job ->
            Codec.Lease { shard; lease_s = 1.5; quantum; job })
          small_nat small_nat ck;
        map2 (fun shard nodes -> Codec.Heartbeat { shard; nodes }) small_nat small_nat;
        map3
          (fun shard nodes leaves -> Codec.Progress { shard; nodes; leaves })
          small_nat small_nat small_nat;
        map2 (fun shard outcome -> Codec.Result { shard; outcome }) small_nat outcome;
        map (fun shard -> Codec.Steal { shard }) small_nat;
        map (fun reason -> Codec.Shutdown { reason }) name;
      ]
  in
  QCheck.make ~print:(Fmt.str "%a" Codec.pp_msg) gen

let prop_codec_roundtrip =
  QCheck.Test.make ~count:300 ~name:"codec round-trips every message" arb_msg
    (fun m ->
      let s = Codec.encode m in
      match Codec.decode s with
      | Ok m' -> String.equal s (Codec.encode m')
      | Error _ -> false)

let prop_decode_total =
  QCheck.Test.make ~count:500 ~name:"decode is total on arbitrary bytes"
    QCheck.(string_gen_of_size Gen.(int_range 0 300) Gen.char)
    (fun s ->
      match Codec.decode s with Ok _ -> true | Error _ -> true)

(* --- frame reassembly ------------------------------------------------------ *)

let feed_string frames s =
  Codec.Frames.feed frames (Bytes.of_string s) (String.length s)

let test_frames_chunked () =
  let frames = Codec.Frames.create () in
  let wire =
    String.concat "" (List.map (fun m -> Bytes.to_string (Codec.frame m)) sample_msgs)
  in
  (* one byte at a time: reassembly must not depend on read boundaries *)
  let popped = ref [] in
  String.iter
    (fun c ->
      feed_string frames (String.make 1 c);
      match Codec.Frames.pop frames with
      | Ok (Some m) -> popped := m :: !popped
      | Ok None -> ()
      | Error e -> Alcotest.failf "pop failed mid-stream: %s" e)
    wire;
  let popped = List.rev !popped in
  Alcotest.(check int) "all messages" (List.length sample_msgs) (List.length popped);
  List.iter2
    (fun a b ->
      Alcotest.(check string) "in order" (Codec.encode a) (Codec.encode b))
    sample_msgs popped

let test_frames_truncated () =
  let frames = Codec.Frames.create () in
  let whole = Bytes.to_string (Codec.frame (Codec.Steal { shard = 4 })) in
  feed_string frames (String.sub whole 0 (String.length whole - 1));
  (match Codec.Frames.pop frames with
  | Ok None -> ()
  | Ok (Some m) -> Alcotest.failf "popped from truncated frame: %a" Codec.pp_msg m
  | Error e -> Alcotest.failf "truncated frame is an error: %s" e);
  (* a truncated frame stays pending, it never becomes a message or error *)
  (match Codec.Frames.pop frames with
  | Ok None -> ()
  | _ -> Alcotest.fail "second pop disagrees");
  (* completing the frame releases it *)
  feed_string frames (String.sub whole (String.length whole - 1) 1);
  match Codec.Frames.pop frames with
  | Ok (Some (Codec.Steal { shard = 4 })) -> ()
  | _ -> Alcotest.fail "completed frame did not pop"

let test_frames_oversized_length () =
  let frames = Codec.Frames.create () in
  (* 0xffffffff length prefix: must be rejected before any allocation *)
  feed_string frames "\xff\xff\xff\xffGARBAGE";
  match Codec.Frames.pop frames with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a garbage length prefix"

let prop_frames_fuzz_total =
  QCheck.Test.make ~count:300 ~name:"Frames.pop is total on fuzzed bytes"
    QCheck.(string_gen_of_size Gen.(int_range 0 200) Gen.char)
    (fun s ->
      let frames = Codec.Frames.create () in
      feed_string frames s;
      (* drain until quiescent; bounded (each pop consumes a frame) *)
      let rec drain n =
        if n > String.length s + 1 then true
        else
          match Codec.Frames.pop frames with
          | Ok (Some _) -> drain (n + 1)
          | Ok None -> true
          | Error _ -> true
      in
      drain 0)

(* Adversarial fragmentation: the wire image of every message type, cut at
   arbitrary split points (including splits inside the 4-byte length
   prefix), must reassemble to exactly the original sequence. *)
let prop_frames_random_splits =
  let wire =
    String.concat ""
      (List.map (fun m -> Bytes.to_string (Codec.frame m)) sample_msgs)
  in
  let arb_cuts =
    QCheck.(list_of_size Gen.(int_range 0 40) (int_bound (String.length wire - 1)))
  in
  QCheck.Test.make ~count:200
    ~name:"frames reassemble across arbitrary split points" arb_cuts
    (fun cuts ->
      let cuts = List.sort_uniq compare (0 :: cuts @ [ String.length wire ]) in
      let frames = Codec.Frames.create () in
      let popped = ref 0 in
      let rec pieces = function
        | a :: (b :: _ as rest) ->
          feed_string frames (String.sub wire a (b - a));
          let rec drain () =
            match Codec.Frames.pop frames with
            | Ok (Some _) ->
              incr popped;
              drain ()
            | Ok None -> ()
            | Error e -> QCheck.Test.fail_reportf "pop failed: %s" e
          in
          drain ();
          pieces rest
        | _ -> ()
      in
      pieces cuts;
      !popped = List.length sample_msgs)

(* --- checkpoint split / merge --------------------------------------------- *)

let trace_key (t : Faults.trace) =
  Fmt.str "%a" (Fmt.list ~sep:Fmt.comma Faults.pp_decision) t

let test_split_partitions_frontier () =
  let frontier =
    [
      sample_trace;
      [];
      [ { Faults.proc = 1; kind = Faults.Step 0 } ];
      [ { Faults.proc = 0; kind = Faults.Wedge } ];
      [ { Faults.proc = 2; kind = Faults.Step 2 } ];
    ]
  in
  let ck = mk_ck ~frontier ~counts:(mk_counts 5) () in
  let shards = Checkpoint.split ck ~into:3 in
  Alcotest.(check int) "three shards" 3 (List.length shards);
  let union =
    List.concat_map (fun s -> List.map trace_key s.Checkpoint.frontier) shards
  in
  Alcotest.(check (list string))
    "frontier partitioned"
    (List.sort compare (List.map trace_key frontier))
    (List.sort compare union);
  List.iter
    (fun s ->
      Alcotest.(check int) "counts zeroed" 0 s.Checkpoint.counts.Checkpoint.leaves;
      Alcotest.(check int) "nodes zeroed" 0 s.Checkpoint.counts.Checkpoint.nodes;
      Alcotest.(check bool)
        "meta preserved" true
        (Checkpoint.meta_find s "protocol" = Some "sticky"))
    shards;
  (* more shards than prefixes: capped at the frontier size *)
  Alcotest.(check int) "capped" 5 (List.length (Checkpoint.split ck ~into:10));
  Alcotest.(check int) "empty frontier" 0
    (List.length (Checkpoint.split (mk_ck ()) ~into:4));
  Alcotest.check_raises "into < 1"
    (Invalid_argument "Checkpoint.split: into must be >= 1") (fun () ->
      ignore (Checkpoint.split ck ~into:0))

let test_add_counts () =
  let a = mk_counts 4 in
  let b =
    {
      (mk_counts 10) with
      Checkpoint.max_accesses = [| 1; 50; 7 |];
      probabilistic = true;
      degraded = 2;
    }
  in
  let c = Checkpoint.add_counts a b in
  Alcotest.(check int) "leaves sum" 14 c.Checkpoint.leaves;
  Alcotest.(check int) "nodes sum" 140 c.Checkpoint.nodes;
  Alcotest.(check int) "max_events max" 14 c.Checkpoint.max_events;
  Alcotest.(check int) "degraded sum" 2 c.Checkpoint.degraded;
  Alcotest.(check bool) "probabilistic or" true c.Checkpoint.probabilistic;
  Alcotest.(check (array int))
    "max_accesses pointwise max, padded" [| 4; 50; 7 |]
    c.Checkpoint.max_accesses

(* --- durable save + tamper rejection --------------------------------------- *)

let test_save_tamper_rejected () =
  let path = Filename.temp_file "wfc_fleet_tamper" ".ck" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let ck = mk_ck ~frontier:[ sample_trace ] ~counts:(mk_counts 9) () in
  Checkpoint.save ck ~path;
  Alcotest.(check bool)
    "no .tmp left behind" false
    (Sys.file_exists (path ^ ".tmp"));
  (match Checkpoint.load path with
  | Ok ck' ->
    Alcotest.(check string) "round-trips" (Checkpoint.to_string ck)
      (Checkpoint.to_string ck')
  | Error e -> Alcotest.failf "clean load failed: %s" e);
  let body = In_channel.with_open_bin path In_channel.input_all in
  (* flip one byte mid-file: the digest must reject it *)
  let torn = Bytes.of_string body in
  let i = Bytes.length torn / 2 in
  Bytes.set torn i (if Bytes.get torn i = 'x' then 'y' else 'x');
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_bytes oc torn);
  (match Checkpoint.load path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a bit-flipped checkpoint");
  (* truncate to half: a torn write must also be rejected *)
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (String.sub body 0 (String.length body / 2)));
  match Checkpoint.load path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a truncated checkpoint"

(* --- chaos plans ----------------------------------------------------------- *)

let test_chaos_spec_roundtrip () =
  let specs = [ "none"; "kill:3"; "stall:5"; "garbage:2"; "delay:0.5"; "kill:7,delay:1.5" ] in
  List.iter
    (fun s ->
      match Chaos.of_spec s with
      | Error e -> Alcotest.failf "of_spec %S: %s" s e
      | Ok p -> (
        match Chaos.of_spec (Chaos.to_spec p) with
        | Ok p' ->
          Alcotest.(check string)
            (Fmt.str "round-trip %S" s) (Chaos.to_spec p) (Chaos.to_spec p')
        | Error e -> Alcotest.failf "re-parse of %S: %s" (Chaos.to_spec p) e))
    specs;
  Alcotest.(check bool) "none is none" true
    (match Chaos.of_spec "none" with Ok p -> Chaos.is_none p | Error _ -> false);
  List.iter
    (fun s ->
      match Chaos.of_spec s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted bogus spec %S" s)
    [ "bogus"; "kill:x"; "kill"; "delay:abc"; "seed:1" ]

let test_chaos_seeded_deterministic () =
  for worker = 0 to 7 do
    let a = Chaos.seeded ~seed:42 ~worker in
    let b = Chaos.seeded ~seed:42 ~worker in
    Alcotest.(check string)
      (Fmt.str "worker %d replayable" worker)
      (Chaos.to_spec a) (Chaos.to_spec b);
    match Chaos.of_spec (Fmt.str "seed:42:%d" worker) with
    | Ok c ->
      Alcotest.(check string)
        (Fmt.str "seed spec expands, worker %d" worker)
        (Chaos.to_spec a) (Chaos.to_spec c)
    | Error e -> Alcotest.failf "seed spec: %s" e
  done

(* --- backoff ---------------------------------------------------------------- *)

let test_backoff () =
  let delays seed n =
    let b = Backoff.create ~seed () in
    List.init n (fun _ -> Backoff.next b)
  in
  let d = delays 3 12 in
  List.iter
    (fun x ->
      Alcotest.(check bool) "positive" true (x > 0.);
      Alcotest.(check bool) "capped at 5s" true (x <= 5.))
    d;
  Alcotest.(check (list (float 0.)))
    "deterministic per seed" d (delays 3 12);
  let b = Backoff.create ~seed:1 () in
  ignore (Backoff.next b);
  ignore (Backoff.next b);
  Alcotest.(check int) "attempts counted" 2 (Backoff.attempt b);
  Backoff.reset b;
  Alcotest.(check int) "reset" 0 (Backoff.attempt b)

(* --- fleet integration: chaos parity with Check.verify ---------------------- *)

let sock_counter = ref 0

let fresh_socket () =
  incr sock_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Fmt.str "wfc-test-%d-%d.sock" (Unix.getpid ()) !sock_counter)

let impl_of name procs =
  match Protocols.of_name ~procs name with
  | Ok impl -> impl
  | Error e -> Alcotest.failf "protocol %s: %s" name e

(* Run [name] under the fleet: [workers] forked real processes (chaos plan
   per worker index), small quantum so shards split and chaos triggers. *)
let serve_fleet ?(workers = 2) ?(chaos = fun _ -> Chaos.none) ?budget
    ?checkpoint ?resume ~name ~procs () =
  let socket = fresh_socket () in
  let impl = impl_of name procs in
  let pids =
    if workers > 0 then Local.spawn ~chaos ~addr:socket workers else []
  in
  let config =
    Coordinator.config ~lease_s:1.5 ~quantum:60
      ~local_grace_s:(if workers = 0 then 0.01 else 5.)
      ?checkpoint socket
  in
  let meta = [ ("protocol", name); ("procs", string_of_int procs) ] in
  Fun.protect ~finally:(fun () -> Local.shutdown pids) @@ fun () ->
  Coordinator.serve ?budget ?resume ~meta ~config impl

let report_of = function
  | Check.Verified r -> r
  | Check.Falsified v -> Alcotest.failf "unexpectedly falsified: %s" v.Check.reason
  | Check.Unknown { reason; _ } -> Alcotest.failf "unexpectedly unknown: %s" reason

let test_parity_clean () =
  let verdict, stats = serve_fleet ~name:"sticky" ~procs:3 () in
  let fleet = report_of verdict in
  let single = report_of (Check.verify (impl_of "sticky" 3)) in
  Alcotest.(check int) "same vectors" single.Check.vectors fleet.Check.vectors;
  Alcotest.(check int) "same longest run" single.Check.max_events fleet.Check.max_events;
  (* split shards re-visit states their siblings deduped, so the fleet may
     count more executions — never fewer *)
  Alcotest.(check bool)
    "executions cover the single-process count" true
    (fleet.Check.executions >= single.Check.executions);
  Alcotest.(check bool) "used the fleet" true (stats.Coordinator.workers_seen >= 1)

let test_parity_chaos_mix () =
  (* worker 0 crashes mid-lease, worker 1 writes wire garbage, worker 2
     delays its results past lease expiry: all availability events *)
  let chaos = function
    | 0 -> { Chaos.none with Chaos.kill_after = Some 3 }
    | 1 -> { Chaos.none with Chaos.garbage_after = Some 2 }
    | _ -> { Chaos.none with Chaos.delay_result_s = Some 2.0 }
  in
  let verdict, stats = serve_fleet ~workers:3 ~chaos ~name:"sticky" ~procs:3 () in
  let fleet = report_of verdict in
  let single = report_of (Check.verify (impl_of "sticky" 3)) in
  Alcotest.(check int) "same vectors" single.Check.vectors fleet.Check.vectors;
  Alcotest.(check bool)
    "chaos produced lease misses" true
    (stats.Coordinator.lease_misses >= 1);
  Alcotest.(check bool)
    "misses surfaced as degradation" true
    (fleet.Check.degraded >= stats.Coordinator.lease_misses)

let test_requeue_then_local_fallback () =
  (* the only worker dies on its first shard and never comes back: the
     shard is requeued once, lost again (nobody left to run it), and the
     coordinator drains everything itself — the run still completes *)
  let chaos _ = { Chaos.none with Chaos.kill_after = Some 2 } in
  let verdict, stats = serve_fleet ~workers:1 ~chaos ~name:"sticky" ~procs:3 () in
  let fleet = report_of verdict in
  let single = report_of (Check.verify (impl_of "sticky" 3)) in
  Alcotest.(check int) "same vectors" single.Check.vectors fleet.Check.vectors;
  Alcotest.(check bool) "lease lost" true (stats.Coordinator.lease_misses >= 1);
  Alcotest.(check bool)
    "coordinator drained locally" true
    (stats.Coordinator.local_shards >= 1);
  Alcotest.(check bool)
    "losses surfaced" true
    (fleet.Check.degraded >= stats.Coordinator.lease_misses)

let test_parity_falsified () =
  let verdict, _ = serve_fleet ~name:"broken" ~procs:2 () in
  (match Check.verify (impl_of "broken" 2) with
  | Check.Falsified _ -> ()
  | _ -> Alcotest.fail "single-process missed the broken protocol");
  match verdict with
  | Check.Falsified v ->
    Alcotest.(check bool) "reason attributed" true (String.length v.Check.reason > 0);
    (match v.Check.witness with
    | None -> Alcotest.fail "no witness"
    | Some w -> (
      (* the coordinator only trusts replay-validated violations; the
         shrunk witness must still replay to a bad leaf *)
      match Witness.replay (impl_of "broken" 2) w with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "witness does not replay: %s" e))
  | Check.Verified _ -> Alcotest.fail "fleet verified a broken protocol"
  | Check.Unknown { reason; _ } -> Alcotest.failf "fleet punted: %s" reason

let test_fleet_cut_resumes_in_single_process () =
  (* budget-cut fleet run flushes a wfc-checkpoint/2 file that plain
     Check.verify resumes to the exact full report — the fleet and the
     single process are interchangeable mid-run *)
  let ckfile = Filename.temp_file "wfc_fleet_cut" ".ck" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove ckfile with Sys_error _ -> ())
  @@ fun () ->
  let verdict, _ =
    serve_fleet ~workers:0 ~budget:100 ~checkpoint:ckfile ~name:"sticky"
      ~procs:3 ()
  in
  (match verdict with
  | Check.Unknown _ -> ()
  | Check.Verified _ ->
    Alcotest.fail "budget 100 did not cut (test needs a smaller budget)"
  | Check.Falsified v -> Alcotest.failf "falsified: %s" v.Check.reason);
  let ck =
    match Checkpoint.load ckfile with
    | Ok ck -> ck
    | Error e -> Alcotest.failf "flushed checkpoint unreadable: %s" e
  in
  let resumed = report_of (Check.verify ~resume:ck (impl_of "sticky" 3)) in
  let direct = report_of (Check.verify (impl_of "sticky" 3)) in
  Alcotest.(check int) "vectors stitched" direct.Check.vectors resumed.Check.vectors;
  Alcotest.(check int)
    "executions stitched" direct.Check.executions resumed.Check.executions;
  Alcotest.(check int)
    "longest run stitched" direct.Check.max_events resumed.Check.max_events

let test_single_process_cut_resumes_in_fleet () =
  let ckfile = Filename.temp_file "wfc_single_cut" ".ck" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove ckfile with Sys_error _ -> ())
  @@ fun () ->
  let meta = [ ("protocol", "sticky"); ("procs", "3") ] in
  (match
     Check.verify ~budget:100 ~checkpoint:(ckfile, 1e9) ~meta
       (impl_of "sticky" 3)
   with
  | Check.Unknown _ -> ()
  | _ -> Alcotest.fail "budget 100 did not cut");
  let ck =
    match Checkpoint.load ckfile with
    | Ok ck -> ck
    | Error e -> Alcotest.failf "checkpoint unreadable: %s" e
  in
  let verdict, _ =
    serve_fleet ~workers:2 ~resume:ck ~name:"sticky" ~procs:3 ()
  in
  let resumed = report_of verdict in
  let direct = report_of (Check.verify (impl_of "sticky" 3)) in
  Alcotest.(check int) "vectors stitched" direct.Check.vectors resumed.Check.vectors;
  Alcotest.(check bool)
    "executions cover the direct count" true
    (resumed.Check.executions >= direct.Check.executions)

(* --------------------------------------------------------------------------- *)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "fleet"
    [
      ( "codec",
        [
          Alcotest.test_case "round-trip, every message kind" `Quick
            test_codec_roundtrip_each;
          Alcotest.test_case "newline flattening" `Quick
            test_codec_newline_flattening;
          Alcotest.test_case "malformed payloads rejected" `Quick
            test_codec_rejects;
          qt prop_codec_roundtrip;
          qt prop_decode_total;
        ] );
      ( "frames",
        [
          Alcotest.test_case "reassembly from 1-byte chunks" `Quick
            test_frames_chunked;
          Alcotest.test_case "truncated frame stays pending" `Quick
            test_frames_truncated;
          Alcotest.test_case "oversized length prefix rejected" `Quick
            test_frames_oversized_length;
          qt prop_frames_fuzz_total;
          qt prop_frames_random_splits;
        ] );
      ( "shards",
        [
          Alcotest.test_case "split partitions the frontier" `Quick
            test_split_partitions_frontier;
          Alcotest.test_case "add_counts merges ledgers" `Quick test_add_counts;
          Alcotest.test_case "tampered checkpoint rejected" `Quick
            test_save_tamper_rejected;
        ] );
      ( "chaos-plans",
        [
          Alcotest.test_case "spec round-trip" `Quick test_chaos_spec_roundtrip;
          Alcotest.test_case "seeded plans replayable" `Quick
            test_chaos_seeded_deterministic;
        ] );
      ("backoff", [ Alcotest.test_case "jittered, capped, seeded" `Quick test_backoff ]);
      ( "fleet",
        [
          Alcotest.test_case "verdict parity, healthy fleet" `Slow
            test_parity_clean;
          Alcotest.test_case "verdict parity under kill/garbage/delay chaos"
            `Slow test_parity_chaos_mix;
          Alcotest.test_case "requeue once, then local fallback" `Slow
            test_requeue_then_local_fallback;
          Alcotest.test_case "broken protocol falsified with replayable witness"
            `Slow test_parity_falsified;
          Alcotest.test_case "fleet cut resumes in a single process" `Slow
            test_fleet_cut_resumes_in_single_process;
          Alcotest.test_case "single-process cut resumes in the fleet" `Slow
            test_single_process_cut_resumes_in_fleet;
        ] );
    ]
