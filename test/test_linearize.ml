(* Tests for the linearizability checker and the safe/regular register
   condition checkers. *)

open Wfc_spec
open Wfc_zoo
open Wfc_program

let mk_op ?(proc = 0) ?(op_index = 0) ~inv ~resp ~s ~e () : Wfc_sim.Exec.op =
  {
    proc;
    op_index;
    inv;
    resp;
    start_step = s;
    end_step = e;
    steps = e - s + 1;
  }

let bit = Register.bit ~ports:4

(* --- linearizability: hand-made histories -------------------------------- *)

let test_lin_sequential () =
  let ops =
    [
      mk_op ~proc:0 ~inv:(Ops.write Value.truth) ~resp:Ops.ok ~s:0 ~e:0 ();
      mk_op ~proc:1 ~inv:Ops.read ~resp:Value.truth ~s:1 ~e:1 ();
    ]
  in
  Alcotest.(check bool) "write;read linearizable" true
    (Wfc_linearize.Linearizability.is_linearizable ~spec:bit ops)

let test_lin_stale_read () =
  let ops =
    [
      mk_op ~proc:0 ~inv:(Ops.write Value.truth) ~resp:Ops.ok ~s:0 ~e:0 ();
      mk_op ~proc:1 ~inv:Ops.read ~resp:Value.falsity ~s:1 ~e:1 ();
    ]
  in
  Alcotest.(check bool) "stale read not linearizable" false
    (Wfc_linearize.Linearizability.is_linearizable ~spec:bit ops)

let test_lin_overlap_both_ok () =
  let write =
    mk_op ~proc:0 ~inv:(Ops.write Value.truth) ~resp:Ops.ok ~s:1 ~e:3 ()
  in
  List.iter
    (fun v ->
      let read = mk_op ~proc:1 ~inv:Ops.read ~resp:v ~s:0 ~e:2 () in
      Alcotest.(check bool)
        (Fmt.str "overlapping read may return %a" Value.pp v)
        true
        (Wfc_linearize.Linearizability.is_linearizable ~spec:bit
           [ write; read ]))
    [ Value.falsity; Value.truth ]

let test_lin_new_old_inversion () =
  (* reads r1 then r2 (r1 precedes r2); r1 sees new, r2 sees old: the classic
     atomicity violation. *)
  let ops =
    [
      mk_op ~proc:0 ~inv:(Ops.write Value.truth) ~resp:Ops.ok ~s:0 ~e:5 ();
      mk_op ~proc:1 ~op_index:0 ~inv:Ops.read ~resp:Value.truth ~s:1 ~e:2 ();
      mk_op ~proc:1 ~op_index:1 ~inv:Ops.read ~resp:Value.falsity ~s:3 ~e:4 ();
    ]
  in
  Alcotest.(check bool) "new/old inversion rejected" false
    (Wfc_linearize.Linearizability.is_linearizable ~spec:bit ops)

let test_lin_empty_history () =
  Alcotest.(check bool) "empty history linearizable" true
    (Wfc_linearize.Linearizability.is_linearizable ~spec:bit [])

let test_lin_witness_order () =
  let w =
    mk_op ~proc:0 ~inv:(Ops.write Value.truth) ~resp:Ops.ok ~s:0 ~e:4 ()
  in
  let r = mk_op ~proc:1 ~inv:Ops.read ~resp:Value.truth ~s:1 ~e:2 () in
  match Wfc_linearize.Linearizability.check ~spec:bit [ w; r ] with
  | Wfc_linearize.Linearizability.Linearizable [ o1; o2 ] ->
    (* the read saw the new value, so the write linearizes first *)
    Alcotest.(check int) "write first" 0 o1.Wfc_sim.Exec.proc;
    Alcotest.(check int) "read second" 1 o2.Wfc_sim.Exec.proc
  | _ -> Alcotest.fail "expected a 2-op witness"

let test_lin_tas_semantics () =
  let tas = Rmw.test_and_set ~ports:2 in
  let both_win =
    [
      mk_op ~proc:0 ~inv:Ops.test_and_set ~resp:Value.falsity ~s:0 ~e:0 ();
      mk_op ~proc:1 ~inv:Ops.test_and_set ~resp:Value.falsity ~s:1 ~e:1 ();
    ]
  in
  Alcotest.(check bool) "two winners impossible" false
    (Wfc_linearize.Linearizability.is_linearizable ~spec:tas both_win);
  let one_winner =
    [
      mk_op ~proc:0 ~inv:Ops.test_and_set ~resp:Value.falsity ~s:0 ~e:3 ();
      mk_op ~proc:1 ~inv:Ops.test_and_set ~resp:Value.truth ~s:1 ~e:2 ();
    ]
  in
  Alcotest.(check bool) "one winner fine" true
    (Wfc_linearize.Linearizability.is_linearizable ~spec:tas one_winner)

(* --- linearizability: whole implementations ------------------------------- *)

let bit_from_two_bits ~procs =
  let b = Register.bit ~ports:procs in
  Implementation.make ~target:b ~procs
    ~objects:[ (b, Value.falsity); (b, Value.falsity) ]
    ~program:(fun ~proc:_ ~inv local ->
      let open Program.Syntax in
      match inv with
      | Value.Sym "read" ->
        let+ v = Program.invoke ~obj:1 Ops.read in
        (v, local)
      | Value.Pair (Value.Sym "write", v) ->
        let* _ = Program.invoke ~obj:0 (Ops.write v) in
        let+ _ = Program.invoke ~obj:1 (Ops.write v) in
        (Ops.ok, local)
      | _ -> assert false)
    ()

(* Non-linearizable on purpose: writing v into a 3-valued register first
   stores v+1 (mod 3), then v. A concurrent read can observe v+1, which is
   neither the old nor the new value. *)
let torn_write_reg ~procs =
  let reg = Register.bounded ~ports:procs ~values:3 in
  Implementation.make ~target:reg ~procs
    ~objects:[ (reg, Value.int 0) ]
    ~program:(fun ~proc:_ ~inv local ->
      let open Program.Syntax in
      match inv with
      | Value.Sym "read" ->
        let+ v = Program.invoke ~obj:0 Ops.read in
        (v, local)
      | Value.Pair (Value.Sym "write", Value.Int v) ->
        let* _ = Program.invoke ~obj:0 (Ops.write (Value.int ((v + 1) mod 3))) in
        let+ _ = Program.invoke ~obj:0 (Ops.write (Value.int v)) in
        (Ops.ok, local)
      | _ -> assert false)
    ()

let test_check_all_good_impl () =
  let impl = bit_from_two_bits ~procs:2 in
  match
    Wfc_linearize.Linearizability.check_all_executions impl
      ~workloads:
        [| [ Ops.write Value.truth; Ops.read ]; [ Ops.read; Ops.write Value.falsity ] |]
      ()
  with
  | Ok stats -> Alcotest.(check bool) "leaves > 0" true (stats.Wfc_sim.Exec.leaves > 0)
  | Error e -> Alcotest.failf "unexpected violation: %s" e

let test_check_all_torn_write () =
  let impl = torn_write_reg ~procs:2 in
  match
    Wfc_linearize.Linearizability.check_all_executions impl
      ~workloads:[| [ Ops.write (Value.int 1) ]; [ Ops.read ] |]
      ()
  with
  | Ok _ -> Alcotest.fail "torn write should not be linearizable"
  | Error _ -> ()

(* Two-phase identity over a regular bit: regular but NOT atomic. *)
let regular_identity ~procs =
  let base = Weak_register.regular_bit ~ports:procs in
  Implementation.make ~target:(Register.bit ~ports:procs) ~procs
    ~objects:[ (base, Weak_register.initial Value.falsity) ]
    ~program:(fun ~proc:_ ~inv local ->
      let open Program.Syntax in
      match inv with
      | Value.Sym "read" ->
        let+ v = Program.invoke ~obj:0 Ops.read in
        (v, local)
      | Value.Pair (Value.Sym "write", v) ->
        let* _ = Program.invoke ~obj:0 (Ops.write_start v) in
        let+ _ = Program.invoke ~obj:0 Ops.write_end in
        (Ops.ok, local)
      | _ -> assert false)
    ()

let test_regular_not_atomic () =
  let impl = regular_identity ~procs:2 in
  let workloads = [| [ Ops.write Value.truth ]; [ Ops.read; Ops.read ] |] in
  (* fails atomicity: two sequential reads inside one write window can see
     new then old *)
  (match
     Wfc_linearize.Linearizability.check_all_executions impl ~workloads ()
   with
  | Ok _ -> Alcotest.fail "regular base should admit new/old inversion"
  | Error _ -> ());
  (* ... but every execution is regular *)
  match
    Wfc_linearize.Register_props.check_all_regular impl ~init:Value.falsity
      ~workloads ()
  with
  | Ok _ -> ()
  | Error v ->
    Alcotest.failf "regularity should hold: %a"
      Wfc_linearize.Register_props.pp_violation v

(* --- safe/regular checkers on hand-made histories -------------------------- *)

let test_regular_checker_accepts_overlap () =
  let ops =
    [
      mk_op ~proc:0 ~inv:(Ops.write Value.truth) ~resp:Ops.ok ~s:1 ~e:3 ();
      mk_op ~proc:1 ~inv:Ops.read ~resp:Value.truth ~s:2 ~e:2 ();
    ]
  in
  Alcotest.(check bool) "concurrent new value ok" true
    (Result.is_ok
       (Wfc_linearize.Register_props.check_regular ~init:Value.falsity ops))

let test_regular_checker_rejects_phantom () =
  (* no overlapping write, read returns a value never written *)
  let ops = [ mk_op ~proc:1 ~inv:Ops.read ~resp:Value.truth ~s:0 ~e:0 () ] in
  match Wfc_linearize.Register_props.check_regular ~init:Value.falsity ops with
  | Ok () -> Alcotest.fail "phantom value must be rejected"
  | Error f ->
    Alcotest.(check int) "culprit is the read" 1
      f.Wfc_linearize.Register_props.read.Wfc_sim.Exec.proc

let test_safe_checker_allows_garbage_on_overlap () =
  let domain = [ Value.falsity; Value.truth ] in
  let ops =
    [
      mk_op ~proc:0 ~inv:(Ops.write Value.truth) ~resp:Ops.ok ~s:1 ~e:3 ();
      (* overlapping read returning the OLD value is fine for safe *)
      mk_op ~proc:1 ~inv:Ops.read ~resp:Value.falsity ~s:2 ~e:2 ();
    ]
  in
  Alcotest.(check bool) "safe tolerates anything in-domain" true
    (Result.is_ok
       (Wfc_linearize.Register_props.check_safe ~init:Value.falsity ~domain ops))

let test_safe_checker_quiescent_strict () =
  let domain = [ Value.falsity; Value.truth ] in
  let ops =
    [
      mk_op ~proc:0 ~inv:(Ops.write Value.truth) ~resp:Ops.ok ~s:0 ~e:1 ();
      mk_op ~proc:1 ~inv:Ops.read ~resp:Value.falsity ~s:2 ~e:3 ();
    ]
  in
  Alcotest.(check bool) "quiescent read must see last write" true
    (Result.is_error
       (Wfc_linearize.Register_props.check_safe ~init:Value.falsity ~domain ops))

let test_checker_rejects_multi_writer () =
  let ops =
    [
      mk_op ~proc:0 ~inv:(Ops.write Value.truth) ~resp:Ops.ok ~s:0 ~e:0 ();
      mk_op ~proc:1 ~inv:(Ops.write Value.falsity) ~resp:Ops.ok ~s:1 ~e:1 ();
    ]
  in
  Alcotest.(check bool) "two writers rejected" true
    (match
       Wfc_linearize.Register_props.check_regular ~init:Value.falsity ops
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* --- oracle: the checker agrees with brute-force permutation search --------- *)

(* Everything in this repository rests on the linearizability checker, so
   the checker itself deserves an independent oracle: for tiny histories,
   enumerate ALL permutations, keep those that respect real-time precedence,
   and replay each against the sequential spec. *)
let brute_force_linearizable ~spec ~init (ops : Wfc_sim.Exec.op list) =
  let rec permutations = function
    | [] -> [ [] ]
    | xs ->
      List.concat_map
        (fun x ->
          List.map
            (fun rest -> x :: rest)
            (permutations (List.filter (fun y -> y != x) xs)))
        xs
  in
  let respects_precedence perm =
    let rec go = function
      | [] -> true
      | (a : Wfc_sim.Exec.op) :: rest ->
        List.for_all
          (fun (b : Wfc_sim.Exec.op) -> not (b.end_step < a.start_step))
          rest
        && go rest
    in
    go perm
  in
  let rec legal state = function
    | [] -> true
    | (o : Wfc_sim.Exec.op) :: rest ->
      List.exists
        (fun (state', resp) ->
          Value.equal resp o.resp && legal state' rest)
        (Type_spec.alternatives spec state ~port:o.proc ~inv:o.inv)
  in
  List.exists
    (fun perm -> respects_precedence perm && legal init perm)
    (permutations ops)

let gen_tiny_history =
  (* up to 5 register ops with random kinds, windows and responses — mostly
     garbage, which is the point: the oracle must agree on both verdicts *)
  let open QCheck.Gen in
  let* n = int_range 1 5 in
  let op i =
    let* proc = int_range 0 1 in
    let* is_write = bool in
    let* v = bool in
    let* start = int_range 0 8 in
    let* len = int_range 0 4 in
    let+ resp_v = bool in
    {
      Wfc_sim.Exec.proc;
      op_index = i;
      inv = (if is_write then Ops.write (Value.bool v) else Ops.read);
      resp = (if is_write then Ops.ok else Value.bool resp_v);
      start_step = start;
      end_step = start + len;
      steps = 1;
    }
  in
  let rec ops i = if i = n then return [] else
    let* o = op i in
    let+ rest = ops (i + 1) in
    o :: rest
  in
  ops 0

let prop_checker_matches_brute_force =
  QCheck.Test.make ~count:400 ~name:"checker agrees with brute force"
    (QCheck.make gen_tiny_history)
    (fun ops ->
      (* per-process ops must be sequential for a well-formed history: make
         them so by sorting per process and spacing the windows *)
      let by_proc p =
        List.filter (fun (o : Wfc_sim.Exec.op) -> o.proc = p) ops
      in
      let sequentialize ops =
        List.mapi
          (fun i (o : Wfc_sim.Exec.op) ->
            {
              o with
              Wfc_sim.Exec.op_index = i;
              start_step = o.start_step + (20 * i);
              end_step = o.end_step + (20 * i);
            })
          ops
      in
      let ops = sequentialize (by_proc 0) @ sequentialize (by_proc 1) in
      let spec = Register.bit ~ports:2 in
      let fast = Wfc_linearize.Linearizability.is_linearizable ~spec ops in
      let slow =
        brute_force_linearizable ~spec ~init:Value.falsity ops
      in
      fast = slow)

(* --- property: exhaustively explored identity registers are linearizable --- *)

let prop_identity_always_linearizable =
  QCheck.Test.make ~count:30 ~name:"identity implementations linearizable"
    QCheck.(pair (int_bound 1) (int_bound 1000))
    (fun (wl_choice, _seed) ->
      let impl = Implementation.identity (Register.bit ~ports:2) ~procs:2 in
      let wl0 =
        if wl_choice = 0 then [ Ops.write Value.truth; Ops.read ]
        else [ Ops.read; Ops.write Value.falsity ]
      in
      let wl1 = [ Ops.read; Ops.write Value.truth ] in
      Result.is_ok
        (Wfc_linearize.Linearizability.check_all_executions impl
           ~workloads:[| wl0; wl1 |] ()))

let () =
  Alcotest.run "wfc_linearize"
    [
      ( "hand-made histories",
        [
          Alcotest.test_case "sequential" `Quick test_lin_sequential;
          Alcotest.test_case "stale read" `Quick test_lin_stale_read;
          Alcotest.test_case "overlap both ok" `Quick test_lin_overlap_both_ok;
          Alcotest.test_case "new/old inversion" `Quick test_lin_new_old_inversion;
          Alcotest.test_case "empty history" `Quick test_lin_empty_history;
          Alcotest.test_case "witness order" `Quick test_lin_witness_order;
          Alcotest.test_case "tas semantics" `Quick test_lin_tas_semantics;
        ] );
      ( "implementations",
        [
          Alcotest.test_case "good impl passes" `Quick test_check_all_good_impl;
          Alcotest.test_case "torn write caught" `Quick test_check_all_torn_write;
          Alcotest.test_case "regular but not atomic" `Quick
            test_regular_not_atomic;
        ] );
      ( "register conditions",
        [
          Alcotest.test_case "regular accepts overlap" `Quick
            test_regular_checker_accepts_overlap;
          Alcotest.test_case "regular rejects phantom" `Quick
            test_regular_checker_rejects_phantom;
          Alcotest.test_case "safe allows garbage on overlap" `Quick
            test_safe_checker_allows_garbage_on_overlap;
          Alcotest.test_case "safe strict when quiescent" `Quick
            test_safe_checker_quiescent_strict;
          Alcotest.test_case "multi-writer rejected" `Quick
            test_checker_rejects_multi_writer;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_identity_always_linearizable;
          QCheck_alcotest.to_alcotest prop_checker_matches_brute_force;
        ] );
    ]
