(* E12 — the multicore runtime: the same Implementation values, executed on
   real domains, still satisfy their specifications. *)

open Wfc_spec
open Wfc_zoo
open Wfc_consensus

let expect_trials name n = function
  | Ok t -> Alcotest.(check int) (name ^ ": all trials ran") n t
  | Error e -> Alcotest.failf "%s: %s" name e

let test_consensus_protocols_parallel () =
  List.iter
    (fun (name, make) ->
      expect_trials name 50
        (Wfc_multicore.Runtime.consensus_trials ~make ~trials:50 ()))
    [
      ("tas", Protocols.from_tas);
      ("faa", Protocols.from_faa);
      ("queue", Protocols.from_queue);
      ("cas3", fun () -> Protocols.from_cas ~procs:3 ());
      ("sticky4", fun () -> Protocols.from_sticky ~procs:4 ());
    ]

let test_compiled_consensus_parallel () =
  (* the Theorem 5 output runs correctly on real domains too *)
  let spec = (Catalog.find ~ports:2 "test-and-set").Catalog.spec in
  let strategy =
    match Wfc_core.Theorem5.strategy_for spec with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let make () =
    match
      Wfc_core.Theorem5.eliminate_registers ~strategy (Protocols.from_tas ())
    with
    | Ok r -> r.Wfc_core.Theorem5.compiled
    | Error e -> Alcotest.fail e
  in
  expect_trials "compiled tas" 30
    (Wfc_multicore.Runtime.consensus_trials ~make ~trials:30 ())

let test_register_chain_parallel () =
  let make () =
    Wfc_registers.Multi_writer.atomic_mrmw ~writers:3 ~extra_readers:1
      ~init:(Value.int 0) ()
  in
  let workloads =
    [|
      [ Ops.write (Value.int 1); Ops.read ];
      [ Ops.write (Value.int 2); Ops.read ];
      [ Ops.read; Ops.write (Value.int 3) ];
      [ Ops.read; Ops.read ];
    |]
  in
  expect_trials "mrmw register" 40
    (Wfc_multicore.Runtime.linearizable_trials ~make ~workloads ~trials:40 ())

let test_bounded_bit_parallel () =
  let make () =
    Wfc_core.Bounded_bit.from_one_use ~reads:6 ~writes:4 ~init:false ()
  in
  let workloads =
    [|
      List.concat_map
        (fun b -> [ Ops.write (Value.bool b) ])
        [ true; false; true ];
      List.init 5 (fun _ -> Ops.read);
    |]
  in
  expect_trials "bounded bit" 40
    (Wfc_multicore.Runtime.linearizable_trials ~make ~workloads ~trials:40 ())

let test_universal_parallel () =
  let make () =
    Universal.construct
      ~target:(Rmw.fetch_add_mod ~ports:2 ~modulus:7)
      ~procs:2 ~cells:12 ()
  in
  let workloads =
    [| [ Ops.fetch_add 1; Ops.fetch_add 1 ]; [ Ops.fetch_add 2; Ops.read ] |]
  in
  expect_trials "universal faa" 30
    (Wfc_multicore.Runtime.linearizable_trials ~make ~workloads ~trials:30 ())

let test_atomic_cas_backend () =
  (* the lock-free CAS-retry backend must satisfy the same specifications *)
  List.iter
    (fun (name, make) ->
      expect_trials name 50
        (Wfc_multicore.Runtime.consensus_trials
           ~backend:Wfc_multicore.Runtime.Atomic_cas ~make ~trials:50 ()))
    [
      ("tas/cas-backend", Protocols.from_tas);
      ("cas3/cas-backend", fun () -> Protocols.from_cas ~procs:3 ());
      ("sticky4/cas-backend", fun () -> Protocols.from_sticky ~procs:4 ());
    ];
  let make () =
    Wfc_registers.Multi_writer.atomic_mrmw ~writers:3 ~extra_readers:0
      ~init:(Value.int 0) ()
  in
  expect_trials "mrmw/cas-backend" 40
    (Wfc_multicore.Runtime.linearizable_trials
       ~backend:Wfc_multicore.Runtime.Atomic_cas ~make
       ~workloads:
         [|
           [ Ops.write (Value.int 1); Ops.read ];
           [ Ops.write (Value.int 2); Ops.read ];
           [ Ops.read; Ops.write (Value.int 3) ];
         |]
       ~trials:40 ())

let test_worker_failure_joins_all () =
  (* One worker hits a disabled transition (Bad_step) while another is still
     mid-workload: the runtime must join every domain before re-raising, so
     by the time the exception surfaces the healthy worker has finished. *)
  let finished = Atomic.make 0 in
  let reads = 200 in
  let ou = One_use.spec in
  let impl =
    Wfc_program.Implementation.make ~target:ou ~procs:2
      ~objects:[ (ou, ou.Type_spec.initial) ]
      ~program:(fun ~proc ~inv:_ local ->
        let open Wfc_program.Program.Syntax in
        if proc = 0 then
          (* fetch-add is undefined on a one-use bit: δ raises Bad_step *)
          let+ r = Wfc_program.Program.invoke ~obj:0 (Ops.fetch_add 1) in
          (r, local)
        else
          let+ v = Wfc_program.Program.invoke ~obj:0 Ops.read in
          Atomic.incr finished;
          (v, local))
      ()
  in
  let workloads = [| [ Ops.read ]; List.init reads (fun _ -> Ops.read) |] in
  match Wfc_multicore.Runtime.run impl ~workloads () with
  | _ -> Alcotest.fail "expected Bad_step from the failing worker"
  | exception Type_spec.Bad_step _ ->
    Alcotest.(check int)
      "healthy worker ran to completion before the raise" reads
      (Atomic.get finished)

let test_outcome_fields () =
  let impl = Protocols.from_sticky ~procs:2 () in
  let outcome =
    Wfc_multicore.Runtime.run impl
      ~workloads:[| [ Ops.propose Value.truth ]; [ Ops.propose Value.falsity ] |]
      ()
  in
  Alcotest.(check int) "two ops" 2 (List.length outcome.Wfc_multicore.Runtime.ops);
  Alcotest.(check bool) "wall clock sane" true
    (outcome.Wfc_multicore.Runtime.wall_s >= 0.0);
  (* the sticky bit ends decided *)
  let final = outcome.Wfc_multicore.Runtime.final_objects.(0) in
  Alcotest.(check bool) "decided" true
    (Value.equal final Value.truth || Value.equal final Value.falsity)

let () =
  Alcotest.run "wfc_multicore"
    [
      ( "parallel stress",
        [
          Alcotest.test_case "consensus protocols" `Quick
            test_consensus_protocols_parallel;
          Alcotest.test_case "compiled consensus" `Quick
            test_compiled_consensus_parallel;
          Alcotest.test_case "MRMW register" `Quick test_register_chain_parallel;
          Alcotest.test_case "bounded bit" `Quick test_bounded_bit_parallel;
          Alcotest.test_case "universal construction" `Quick
            test_universal_parallel;
          Alcotest.test_case "Atomic CAS backend" `Quick test_atomic_cas_backend;
          Alcotest.test_case "worker failure joins all" `Quick
            test_worker_failure_joins_all;
          Alcotest.test_case "outcome fields" `Quick test_outcome_fields;
        ] );
    ]
