(* Networked-fleet tests — Transport address grammar and deadline-bounded
   TCP I/O, the Netchaos pure fault schedule (replay determinism: same
   plan + same chunks ⇒ same actions and same fault log), the crash-safe
   job queue (journal replay, torn tails, retry/quarantine, exactly-once
   restart), and wire-chaos integration: TCP-loopback fleet runs routed
   through a Netchaos proxy must reach the same verdict as single-process
   Check.verify under every network-fault plan. *)

module Checkpoint = Wfc_sim.Checkpoint
module Faults = Wfc_sim.Faults
module Transport = Wfc_fleet.Transport
module Netchaos = Wfc_fleet.Netchaos
module Jobqueue = Wfc_fleet.Jobqueue
module Coordinator = Wfc_fleet.Coordinator
module Local = Wfc_fleet.Local
module Check = Wfc_consensus.Check
module Protocols = Wfc_consensus.Protocols

(* --- transport: address grammar -------------------------------------------- *)

let test_transport_parse () =
  let ok s expect =
    match Transport.parse s with
    | Ok a -> Alcotest.(check string) s expect (Transport.to_string a)
    | Error e -> Alcotest.failf "parse %S: %s" s e
  in
  ok "tcp:127.0.0.1:9090" "tcp:127.0.0.1:9090";
  ok "tcp:localhost:1" "tcp:localhost:1";
  ok "unix:/tmp/x.sock" "unix:/tmp/x.sock";
  ok "/tmp/x.sock" "unix:/tmp/x.sock";
  (* unknown prefix with a colon: the whole string is a bare path *)
  ok "weird:path" "unix:weird:path";
  (* to_string round-trips through parse *)
  List.iter
    (fun s ->
      match Transport.parse s with
      | Ok a -> (
        match Transport.parse (Transport.to_string a) with
        | Ok a' ->
          Alcotest.(check string)
            (Fmt.str "round-trip %S" s) (Transport.to_string a)
            (Transport.to_string a')
        | Error e -> Alcotest.failf "re-parse of %S: %s" s e)
      | Error e -> Alcotest.failf "parse %S: %s" s e)
    [ "tcp:10.0.0.1:80"; "unix:/a/b"; "relative.sock" ];
  List.iter
    (fun s ->
      match Transport.parse s with
      | Error _ -> ()
      | Ok a ->
        Alcotest.failf "accepted %S as %s" s (Transport.to_string a))
    [ "tcp:nohostport"; "tcp:host:notaport"; "tcp::9"; "tcp:h:99999" ]

let test_transport_tcp_roundtrip () =
  let listener = Transport.listen (Transport.Tcp { host = "127.0.0.1"; port = 0 }) in
  Fun.protect ~finally:(fun () -> Transport.close_noerr listener) @@ fun () ->
  let port =
    match Unix.getsockname listener with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> Alcotest.fail "listener is not INET"
  in
  let client =
    Transport.connect ~deadline_s:2. (Transport.Tcp { host = "127.0.0.1"; port })
  in
  let rec accept_retry n =
    match Transport.accept listener with
    | Some fd -> fd
    | None ->
      if n > 200 then Alcotest.fail "accept never became ready"
      else (
        Unix.sleepf 0.01;
        accept_retry (n + 1))
  in
  let server = accept_retry 0 in
  Fun.protect
    ~finally:(fun () ->
      Transport.close_noerr client;
      Transport.close_noerr server)
  @@ fun () ->
  Transport.write_all ~deadline_s:2. client (Bytes.of_string "ping") 0 4;
  let buf = Bytes.create 16 in
  let n = Transport.read ~deadline_s:2. server buf 0 16 in
  Alcotest.(check string) "payload" "ping" (Bytes.sub_string buf 0 n);
  (* an idle peer costs the deadline, never a hang *)
  match Transport.read ~deadline_s:0.1 server buf 0 16 with
  | _ -> Alcotest.fail "read returned with nothing to read"
  | exception Transport.Timeout op ->
    Alcotest.(check string) "names the operation" "read" op

(* --- netchaos: plan specs --------------------------------------------------- *)

let test_netchaos_spec_roundtrip () =
  let specs =
    [
      "none"; "latency:0.001-0.01"; "partition:3:1.5"; "reset:4"; "fragment";
      "corrupt:2"; "latency:0-0.1,fragment,jitter:7";
    ]
  in
  List.iter
    (fun s ->
      match Netchaos.of_spec s with
      | Error e -> Alcotest.failf "of_spec %S: %s" s e
      | Ok p -> (
        match Netchaos.of_spec (Netchaos.to_spec p) with
        | Ok p' ->
          Alcotest.(check string)
            (Fmt.str "round-trip %S" s) (Netchaos.to_spec p)
            (Netchaos.to_spec p')
        | Error e -> Alcotest.failf "re-parse of %S: %s" (Netchaos.to_spec p) e))
    specs;
  Alcotest.(check bool)
    "none is none" true
    (match Netchaos.of_spec "none" with
    | Ok p -> Netchaos.is_none p
    | Error _ -> false);
  List.iter
    (fun s ->
      match Netchaos.of_spec s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted bogus spec %S" s)
    [ "bogus"; "latency:abc"; "latency:5-1"; "partition:1"; "corrupt:0"; "reset:x" ]

let test_netchaos_seeded_deterministic () =
  for stream = 0 to 7 do
    let a = Netchaos.seeded ~seed:42 ~stream in
    let b = Netchaos.seeded ~seed:42 ~stream in
    Alcotest.(check string)
      (Fmt.str "stream %d replayable" stream)
      (Netchaos.to_spec a) (Netchaos.to_spec b);
    match Netchaos.of_spec (Fmt.str "seed:42:%d" stream) with
    | Ok c ->
      Alcotest.(check string)
        (Fmt.str "seed spec expands, stream %d" stream)
        (Netchaos.to_spec a) (Netchaos.to_spec c)
    | Error e -> Alcotest.failf "seed spec: %s" e
  done

(* --- netchaos: the pure fault schedule -------------------------------------- *)

let plan_of s =
  match Netchaos.of_spec s with
  | Ok p -> p
  | Error e -> Alcotest.fail e

let feed_all plan chunks =
  let t = Netchaos.Stream.create plan in
  let actions = List.map (Netchaos.Stream.feed t) chunks in
  (actions, Netchaos.Stream.faults t)

let test_stream_fragment () =
  let actions, _ = feed_all (plan_of "fragment") [ "abcd" ] in
  match actions with
  | [ frags ] ->
    Alcotest.(check int) "one action per byte" 4 (List.length frags);
    let data =
      String.concat ""
        (List.map
           (function
             | Netchaos.Forward { data; _ } -> data
             | Netchaos.Reset -> Alcotest.fail "fragment never resets")
           frags)
    in
    Alcotest.(check string) "bytes preserved in order" "abcd" data
  | _ -> Alcotest.fail "expected one fed chunk"

let test_stream_reset_then_dead () =
  let actions, faults =
    feed_all (plan_of "reset:1") [ "a"; "b"; "c"; "d" ]
  in
  (match actions with
  | [ [ Netchaos.Forward _ ]; [ Netchaos.Reset ]; []; [] ] -> ()
  | _ -> Alcotest.fail "reset:1 must forward chunk 1, reset at 2, then die");
  Alcotest.(check int) "one fault logged" 1 (List.length faults)

let test_stream_corrupt_one_bit () =
  let plan = plan_of "corrupt:2" in
  let chunks = [ "aaaa"; "bbbb"; "cccc" ] in
  let actions, faults = feed_all plan chunks in
  let flat =
    List.map
      (function
        | [ Netchaos.Forward { data; _ } ] -> data
        | _ -> Alcotest.fail "corrupt only rewrites bytes")
      actions
  in
  (match flat with
  | [ a; b; c ] ->
    Alcotest.(check string) "chunk 1 untouched" "aaaa" a;
    Alcotest.(check string) "chunk 3 untouched" "cccc" c;
    Alcotest.(check int) "length preserved" 4 (String.length b);
    let diff = ref 0 in
    String.iteri
      (fun i ch ->
        let x = Char.code ch lxor Char.code "bbbb".[i] in
        diff := !diff + (if x = 0 then 0 else 1);
        (* exactly one bit of one byte *)
        if x <> 0 then Alcotest.(check int) "single bit" 0 (x land (x - 1)))
      b;
    Alcotest.(check int) "exactly one byte differs" 1 !diff
  | _ -> Alcotest.fail "wrong action count");
  Alcotest.(check int) "one fault logged" 1 (List.length faults)

let test_stream_partition_delays () =
  let actions, _ = feed_all (plan_of "partition:2:5") [ "a"; "b"; "c"; "d" ] in
  List.iteri
    (fun i acts ->
      match acts with
      | [ Netchaos.Forward { delay_s; _ } ] ->
        if i = 2 then
          Alcotest.(check bool) "chunk 3 delayed >= 5s" true (delay_s >= 5.)
        else Alcotest.(check (float 0.)) "others undelayed" 0. delay_s
      | _ -> Alcotest.fail "partition only delays")
    actions

(* Replay determinism: any seeded plan, fed the same chunk sequence by two
   fresh streams, must produce identical actions and identical fault logs —
   the property that makes a chaos run's fault schedule reproducible from
   its seed alone. *)
let prop_stream_replay_deterministic =
  let open QCheck in
  let arb =
    pair (pair small_nat small_nat)
      (list_of_size Gen.(int_range 1 12)
         (string_gen_of_size Gen.(int_range 1 40) Gen.char))
  in
  Test.make ~count:200 ~name:"netchaos stream schedules replay exactly" arb
    (fun ((seed, stream), chunks) ->
      let plan = Netchaos.seeded ~seed ~stream in
      feed_all plan chunks = feed_all plan chunks)

(* --- job queue --------------------------------------------------------------- *)

let tmpdir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  Unix.mkdir d 0o755;
  d

let rm_rf d =
  let rec go p =
    if Sys.is_directory p then (
      Array.iter (fun f -> go (Filename.concat p f)) (Sys.readdir p);
      Unix.rmdir p)
    else Sys.remove p
  in
  try go d with Sys_error _ | Unix.Unix_error _ -> ()

let with_queue_dir f =
  let d = tmpdir "wfc_netfleet_q" in
  Fun.protect ~finally:(fun () -> rm_rf d) @@ fun () ->
  f ~journal:(Filename.concat d "journal") ~state_dir:(Filename.concat d "ck")

let sample_jobs = Jobqueue.matrix ~protocols:[ ("tas", 2); ("faa", 2) ] ~crashes:[ 0; 1 ]

let test_matrix_ids () =
  Alcotest.(check (list string))
    "stable cross-product ids"
    [ "tas2.c0"; "tas2.c1"; "faa2.c0"; "faa2.c1" ]
    (List.map (fun (j : Jobqueue.job) -> j.Jobqueue.id) sample_jobs)

let run_queue ?max_retries ?interrupt ~journal ~state_dir ~exec jobs =
  match Jobqueue.run ~journal ~state_dir ?max_retries ?interrupt ~exec jobs with
  | Ok r -> r
  | Error e -> Alcotest.failf "queue run failed: %s" e

let test_queue_drains_then_restarts_idempotently () =
  with_queue_dir @@ fun ~journal ~state_dir ->
  let calls = Hashtbl.create 8 in
  let exec (j : Jobqueue.job) ~checkpoint:_ ~resume:_ =
    Hashtbl.replace calls j.Jobqueue.id
      (1 + Option.value ~default:0 (Hashtbl.find_opt calls j.Jobqueue.id));
    Ok Jobqueue.Verified
  in
  let r = run_queue ~journal ~state_dir ~exec sample_jobs in
  Alcotest.(check int) "all done" 4 r.Jobqueue.completed;
  Alcotest.(check int) "none quarantined" 0 r.Jobqueue.quarantined;
  Alcotest.(check int) "each job ran once" 4 (Hashtbl.length calls);
  (* a restart on the same journal re-runs nothing *)
  let r2 = run_queue ~journal ~state_dir ~exec sample_jobs in
  Alcotest.(check int) "still all done" 4 r2.Jobqueue.completed;
  Hashtbl.iter
    (fun id n -> Alcotest.(check int) (id ^ " exactly once") 1 n)
    calls

let test_queue_retry_then_quarantine () =
  with_queue_dir @@ fun ~journal ~state_dir ->
  (* one job fails once then succeeds; the other always fails *)
  let attempts = Hashtbl.create 8 in
  let exec (j : Jobqueue.job) ~checkpoint:_ ~resume:_ =
    let id = j.Jobqueue.id in
    let n = 1 + Option.value ~default:0 (Hashtbl.find_opt attempts id) in
    Hashtbl.replace attempts id n;
    if id = "tas2.c0" && n >= 2 then Ok Jobqueue.Verified
    else Error (Fmt.str "induced failure %d" n)
  in
  let jobs = Jobqueue.matrix ~protocols:[ ("tas", 2); ("faa", 2) ] ~crashes:[ 0 ] in
  let r = run_queue ~max_retries:3 ~journal ~state_dir ~exec jobs in
  Alcotest.(check int) "flaky job completed" 1 r.Jobqueue.completed;
  Alcotest.(check int) "hopeless job quarantined" 1 r.Jobqueue.quarantined;
  Alcotest.(check int) "failed attempts counted" 4 r.Jobqueue.retried;
  Alcotest.(check int) "quarantine respects the budget" 3
    (Hashtbl.find attempts "faa2.c0");
  (* quarantine is durable: a restart does not burn more attempts *)
  let r2 = run_queue ~max_retries:3 ~journal ~state_dir ~exec jobs in
  Alcotest.(check int) "still quarantined" 1 r2.Jobqueue.quarantined;
  Alcotest.(check int) "no new attempts" 3 (Hashtbl.find attempts "faa2.c0")

let test_queue_torn_tail_dropped () =
  with_queue_dir @@ fun ~journal ~state_dir ->
  (* a crash mid-append leaves an unterminated verdict line: the job must
     be treated as still pending, not half-done *)
  Out_channel.with_open_bin journal (fun oc ->
      Out_channel.output_string oc
        "wfc-queue/1\njob tas2.c0 tas 2 0\nstart tas2.c0 1\nok tas2.c0 veri");
  (match Jobqueue.load journal with
  | Ok [ { Jobqueue.status = Jobqueue.Pending 0; _ } ] -> ()
  | Ok _ -> Alcotest.fail "torn verdict line must leave the job pending"
  | Error e -> Alcotest.failf "load: %s" e);
  let ran = ref 0 in
  let exec _ ~checkpoint:_ ~resume:_ =
    incr ran;
    Ok Jobqueue.Verified
  in
  let jobs = Jobqueue.matrix ~protocols:[ ("tas", 2) ] ~crashes:[ 0 ] in
  let r = run_queue ~journal ~state_dir ~exec jobs in
  Alcotest.(check int) "torn job re-ran" 1 !ran;
  Alcotest.(check int) "and completed" 1 r.Jobqueue.completed

let test_queue_crash_midjob_exactly_once () =
  with_queue_dir @@ fun ~journal ~state_dir ->
  (* the journal of a coordinator SIGKILLed mid-faa2.c0: tas2.c0 has a
     durable verdict, faa2.c0 was started but never finished *)
  Out_channel.with_open_bin journal (fun oc ->
      Out_channel.output_string oc
        "wfc-queue/1\n\
         job tas2.c0 tas 2 0\n\
         job faa2.c0 faa 2 0\n\
         start tas2.c0 1\n\
         ok tas2.c0 verified\n\
         start faa2.c0 1\n");
  let ran = ref [] in
  let exec (j : Jobqueue.job) ~checkpoint:_ ~resume:_ =
    ran := j.Jobqueue.id :: !ran;
    Ok Jobqueue.Verified
  in
  let jobs = Jobqueue.matrix ~protocols:[ ("tas", 2); ("faa", 2) ] ~crashes:[ 0 ] in
  let r = run_queue ~journal ~state_dir ~exec jobs in
  Alcotest.(check (list string))
    "only the in-flight job re-ran" [ "faa2.c0" ] !ran;
  Alcotest.(check int) "both done" 2 r.Jobqueue.completed;
  Alcotest.(check int) "no failures invented" 0 r.Jobqueue.retried

let test_queue_interrupt_leaves_resumable () =
  with_queue_dir @@ fun ~journal ~state_dir ->
  let flag = Atomic.make true in
  let exec _ ~checkpoint:_ ~resume:_ = Alcotest.fail "must not run" in
  let r = run_queue ~interrupt:flag ~journal ~state_dir ~exec sample_jobs in
  Alcotest.(check int) "nothing completed" 0 r.Jobqueue.completed;
  Alcotest.(check int) "nothing quarantined" 0 r.Jobqueue.quarantined;
  (* the journal already knows the matrix and resumes it *)
  Atomic.set flag false;
  let ran = ref 0 in
  let exec _ ~checkpoint:_ ~resume:_ =
    incr ran;
    Ok Jobqueue.Verified
  in
  let r2 = run_queue ~interrupt:flag ~journal ~state_dir ~exec sample_jobs in
  Alcotest.(check int) "all jobs recovered" 4 r2.Jobqueue.completed;
  Alcotest.(check int) "each ran once" 4 !ran

let test_queue_resume_passes_checkpoint () =
  with_queue_dir @@ fun ~journal ~state_dir ->
  let jobs = Jobqueue.matrix ~protocols:[ ("tas", 2) ] ~crashes:[ 0 ] in
  Unix.mkdir state_dir 0o755;
  (* a periodic flush left a checkpoint for the in-flight job: exec must
     receive it as its resume point *)
  let engine =
    {
      Checkpoint.dedup = true;
      por = true;
      domains = 1;
      intern = true;
      symmetry = false;
      flat = false;
    }
  in
  let faults =
    { Faults.max_crashes = 0; max_recoveries = 0; max_glitches = 0; degraded = [] }
  in
  let ck =
    Checkpoint.make
      ~meta:[ ("protocol", "tas"); ("procs", "2") ]
      ~engine ~fuel:16 ~budget_left:99 ~faults
      ~workloads:[| [ Wfc_spec.Value.truth ] |]
      ~counts:(Checkpoint.zero_counts ~n_objs:1) ~frontier:[] ()
  in
  Checkpoint.save ck ~path:(Filename.concat state_dir "tas2.c0.ck");
  let saw_resume = ref false in
  let exec _ ~checkpoint ~resume =
    Alcotest.(check string)
      "private checkpoint path"
      (Filename.concat state_dir "tas2.c0.ck")
      checkpoint;
    saw_resume := resume <> None;
    Ok Jobqueue.Verified
  in
  let r = run_queue ~journal ~state_dir ~exec jobs in
  Alcotest.(check bool) "resume checkpoint delivered" true !saw_resume;
  Alcotest.(check int) "done" 1 r.Jobqueue.completed;
  Alcotest.(check bool)
    "checkpoint consumed after the verdict" false
    (Sys.file_exists (Filename.concat state_dir "tas2.c0.ck"))

(* --- wire-chaos integration: TCP parity through the proxy -------------------- *)

let fresh_port =
  let c = ref 0 in
  fun () ->
    incr c;
    41000 + (Unix.getpid () mod 1500 * 16) + !c

let impl_of name procs =
  match Protocols.of_name ~procs name with
  | Ok impl -> impl
  | Error e -> Alcotest.failf "protocol %s: %s" name e

let parse_addr s =
  match Transport.parse s with Ok a -> a | Error e -> Alcotest.fail e

(* Workers reach the coordinator only through a Netchaos proxy running
   [plan] on every byte of every connection, both directions. *)
let serve_via_proxy ?(workers = 2) ~plan ~name ~procs () =
  let upstream = Fmt.str "tcp:127.0.0.1:%d" (fresh_port ()) in
  let proxied = Fmt.str "tcp:127.0.0.1:%d" (fresh_port ()) in
  let plan = plan_of plan in
  let proxy_pid =
    Netchaos.spawn ~listen:(parse_addr proxied) ~upstream:(parse_addr upstream)
      plan
  in
  let pids = Local.spawn ~addr:proxied workers in
  let impl = impl_of name procs in
  let config = Coordinator.config ~lease_s:1.5 ~quantum:60 upstream in
  let meta = [ ("protocol", name); ("procs", string_of_int procs) ] in
  Fun.protect ~finally:(fun () -> Local.shutdown (proxy_pid :: pids))
  @@ fun () -> Coordinator.serve ~meta ~config impl

let report_of = function
  | Check.Verified r -> r
  | Check.Falsified v -> Alcotest.failf "unexpectedly falsified: %s" v.Check.reason
  | Check.Unknown { reason; _ } -> Alcotest.failf "unexpectedly unknown: %s" reason

(* The acceptance bar: under [plan], the fleet reaches the same verdict as
   the single process, never a hang or crash; availability losses surface
   in [degraded], only re-attaches are free. *)
let check_wire_parity plan =
  let verdict, stats = serve_via_proxy ~plan ~name:"sticky" ~procs:3 () in
  let fleet = report_of verdict in
  let single = report_of (Check.verify (impl_of "sticky" 3)) in
  Alcotest.(check int)
    (plan ^ ": same vectors") single.Check.vectors fleet.Check.vectors;
  Alcotest.(check int)
    (plan ^ ": same longest run") single.Check.max_events fleet.Check.max_events;
  Alcotest.(check bool)
    (plan ^ ": executions cover the single-process count") true
    (fleet.Check.executions >= single.Check.executions);
  Alcotest.(check bool)
    (plan ^ ": losses surfaced as degradation") true
    (fleet.Check.degraded >= stats.Coordinator.lease_misses);
  stats

let test_wire_parity_clean () = ignore (check_wire_parity "none")
let test_wire_parity_latency () = ignore (check_wire_parity "latency:0.001-0.01")
let test_wire_parity_fragment () = ignore (check_wire_parity "fragment")
let test_wire_parity_corrupt () = ignore (check_wire_parity "corrupt:4")

let test_wire_parity_partition () =
  (* 2s of silence outlasts the 1.5s lease: the coordinator must requeue
     or re-adopt, and the verdict must not change *)
  ignore (check_wire_parity "partition:6:2")

let test_wire_parity_reset () =
  let stats = check_wire_parity "reset:20" in
  (* every connection dies after 20 chunks; sessions survive their
     connections, so recovery shows up as re-attaches or (when the outage
     outlasts the lease) as requeued shards — never as a wrong verdict *)
  Alcotest.(check bool)
    "connection churn was absorbed" true
    (stats.Coordinator.reattaches >= 1 || stats.Coordinator.lease_misses >= 1)

(* --------------------------------------------------------------------------- *)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "netfleet"
    [
      ( "transport",
        [
          Alcotest.test_case "address grammar" `Quick test_transport_parse;
          Alcotest.test_case "tcp loopback round-trip + read deadline" `Quick
            test_transport_tcp_roundtrip;
        ] );
      ( "netchaos-plans",
        [
          Alcotest.test_case "spec round-trip" `Quick
            test_netchaos_spec_roundtrip;
          Alcotest.test_case "seeded plans replayable" `Quick
            test_netchaos_seeded_deterministic;
        ] );
      ( "netchaos-stream",
        [
          Alcotest.test_case "fragment shatters to single bytes" `Quick
            test_stream_fragment;
          Alcotest.test_case "reset kills the stream" `Quick
            test_stream_reset_then_dead;
          Alcotest.test_case "corrupt flips exactly one bit" `Quick
            test_stream_corrupt_one_bit;
          Alcotest.test_case "partition delays everything behind it" `Quick
            test_stream_partition_delays;
          qt prop_stream_replay_deterministic;
        ] );
      ( "jobqueue",
        [
          Alcotest.test_case "matrix ids" `Quick test_matrix_ids;
          Alcotest.test_case "drains, restart is idempotent" `Quick
            test_queue_drains_then_restarts_idempotently;
          Alcotest.test_case "retry then quarantine, durably" `Quick
            test_queue_retry_then_quarantine;
          Alcotest.test_case "torn tail leaves the job pending" `Quick
            test_queue_torn_tail_dropped;
          Alcotest.test_case "crash mid-job finishes exactly once" `Quick
            test_queue_crash_midjob_exactly_once;
          Alcotest.test_case "interrupt leaves a resumable journal" `Quick
            test_queue_interrupt_leaves_resumable;
          Alcotest.test_case "in-flight checkpoint reaches exec" `Quick
            test_queue_resume_passes_checkpoint;
        ] );
      ( "wire-chaos",
        [
          Alcotest.test_case "verdict parity, clean proxy" `Slow
            test_wire_parity_clean;
          Alcotest.test_case "verdict parity under latency" `Slow
            test_wire_parity_latency;
          Alcotest.test_case "verdict parity under 1-byte fragmentation" `Slow
            test_wire_parity_fragment;
          Alcotest.test_case "verdict parity under mid-frame corruption" `Slow
            test_wire_parity_corrupt;
          Alcotest.test_case "verdict parity across a partition" `Slow
            test_wire_parity_partition;
          Alcotest.test_case "verdict parity under connection resets" `Slow
            test_wire_parity_reset;
        ] );
    ]
