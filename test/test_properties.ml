(* Property-based validation of the Section 5 pipeline over RANDOM types.

   The paper's results quantify over all types; the unit suites check a
   curated zoo, and this suite fuzzes the same theorems over randomly
   generated finite deterministic types:

   - §5.1 ≡ §5.2 on oblivious types: the triviality decision procedure says
     Trivial exactly when the non-trivial pair search finds nothing;
   - §5.1 soundness: every witness verifies, and the constructed one-use bit
     passes the full conformance check;
   - §5.2 soundness on non-oblivious types: every found pair yields a
     conforming one-use bit;
   - Lemmas 2-4: the *general* minimal pair (over arbitrary history shapes)
     always has the predicted ⟨pure ī | foreign·ī⟩ shape;
   - Theorem 5 end-to-end: compiling a register-using consensus protocol
     over a random non-trivial type yields a correct register-free one. *)

open Wfc_spec
open Wfc_core

(* --- random finite deterministic types ------------------------------------- *)

type table = {
  n_states : int;
  n_invs : int;
  table : (int * int) array array array;
      (** [table.(port).(state).(inv) = (next_state, response)] *)
  oblivious : bool;
}

let state_v i = Value.sym (Fmt.str "s%d" i)
let inv_v i = Value.sym (Fmt.str "i%d" i)
let resp_v i = Value.sym (Fmt.str "r%d" i)

let spec_of_table t =
  let states = List.init t.n_states state_v in
  let invocations = List.init t.n_invs inv_v in
  let decode_state q =
    let s = Value.as_sym q in
    int_of_string (String.sub s 1 (String.length s - 1))
  in
  let decode_inv = decode_state in
  Type_spec.make ~name:"random-type" ~ports:2 ~initial:(state_v 0) ~states
    ~invocations ~oblivious:t.oblivious (fun q ~port ~inv ->
      let port = if t.oblivious then 0 else port in
      let next, resp = t.table.(port).(decode_state q).(decode_inv inv) in
      [ (state_v next, resp_v resp) ])

let gen_table ~oblivious =
  let open QCheck.Gen in
  let* n_states = int_range 1 4 in
  let* n_invs = int_range 1 3 in
  let* n_resps = int_range 1 3 in
  let cell = pair (int_range 0 (n_states - 1)) (int_range 0 (n_resps - 1)) in
  let plane = array_size (return n_states) (array_size (return n_invs) cell) in
  let+ planes =
    if oblivious then
      let+ p = plane in
      [| p; p |]
    else
      let* p0 = plane in
      let+ p1 = plane in
      [| p0; p1 |]
  in
  { n_states; n_invs; table = planes; oblivious }

let print_table t =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Fmt.str "%d states, %d invs, %s:" t.n_states t.n_invs
       (if t.oblivious then "oblivious" else "non-oblivious"));
  let ports = if t.oblivious then 1 else 2 in
  for port = 0 to ports - 1 do
    Array.iteri
      (fun s row ->
        Array.iteri
          (fun i (n, r) ->
            Buffer.add_string buf
              (Fmt.str " δ(p%d,s%d,i%d)=(s%d,r%d)" port s i n r))
          row)
      t.table.(port)
  done;
  Buffer.contents buf

let arb_oblivious = QCheck.make ~print:print_table (gen_table ~oblivious:true)

let arb_general = QCheck.make ~print:print_table (gen_table ~oblivious:false)

(* --- properties --------------------------------------------------------------- *)

let prop_decide_agrees_with_pair_search =
  QCheck.Test.make ~count:150
    ~name:"§5.1 Trivial ⟺ §5.2 finds no pair (oblivious types)"
    arb_oblivious
    (fun t ->
      let spec = spec_of_table t in
      match (Triviality.decide spec, Nontrivial_pair.search ~max_len:9 spec) with
      | Ok Triviality.Trivial, Ok None -> true
      | Ok (Triviality.Nontrivial _), Ok (Some _) -> true
      | Ok Triviality.Trivial, Ok (Some _) -> false
      | Ok (Triviality.Nontrivial _), Ok None -> false
      | _ -> false)

let prop_witness_verifies =
  QCheck.Test.make ~count:150 ~name:"§5.1 witnesses always verify"
    arb_oblivious
    (fun t ->
      let spec = spec_of_table t in
      match Triviality.decide spec with
      | Ok (Triviality.Nontrivial w) -> Triviality.verify_witness spec w
      | Ok Triviality.Trivial -> true
      | Error _ -> false)

let prop_oblivious_construction_conforms =
  QCheck.Test.make ~count:60
    ~name:"§5.1 construction conforms on random non-trivial types"
    arb_oblivious
    (fun t ->
      let spec = spec_of_table t in
      match Triviality.decide spec with
      | Ok Triviality.Trivial -> true
      | Ok (Triviality.Nontrivial w) ->
        Result.is_ok
          (One_use_bit.check_impl (Triviality.one_use_bit spec w ()))
      | Error _ -> false)

let prop_general_construction_conforms =
  QCheck.Test.make ~count:60
    ~name:"§5.2 construction conforms on random non-oblivious types"
    arb_general
    (fun t ->
      let spec = spec_of_table t in
      match Nontrivial_pair.search ~max_len:7 spec with
      | Ok None -> true
      | Ok (Some p) ->
        Result.is_ok
          (One_use_bit.check_impl (Nontrivial_pair.one_use_bit spec p ()))
      | Error _ -> false)

let lemma_shape (raw : Nontrivial_pair.raw_pair) =
  let on_port port = List.filter (fun (p, _) -> p = port) in
  let pure h = List.for_all (fun (p, _) -> p = raw.Nontrivial_pair.raw_port) h in
  let h1 = raw.Nontrivial_pair.raw_h1 and h2 = raw.Nontrivial_pair.raw_h2 in
  (* orient: the pure side is the paper's H1 *)
  let h1, h2 =
    if List.length h1 <= List.length h2 then (h1, h2) else (h2, h1)
  in
  let k = List.length h1 in
  pure h1
  && List.length h2 = k + 1
  && (match h2 with
     | (p0, _) :: rest ->
       p0 <> raw.Nontrivial_pair.raw_port
       && List.length (on_port raw.Nontrivial_pair.raw_port rest) = k
     | [] -> false)

let prop_lemmas_on_random_types =
  QCheck.Test.make ~count:25
    ~name:"Lemmas 2-4: general minimal pairs have the paper's shape"
    arb_general
    (fun t ->
      let spec = spec_of_table t in
      match Nontrivial_pair.search_general ~max_len:5 spec with
      | Ok None -> true
      | Ok (Some raw) -> lemma_shape raw
      | Error _ -> false)

let prop_theorem5_on_random_types =
  QCheck.Test.make ~count:15
    ~name:"Theorem 5 end-to-end over random non-trivial types"
    arb_oblivious
    (fun t ->
      let spec = spec_of_table t in
      match Theorem5.strategy_for spec with
      | Error _ -> true (* trivial or out of scope: nothing to do *)
      | Ok strategy -> (
        match
          Theorem5.eliminate_registers ~strategy
            (Wfc_consensus.Protocols.from_tas ())
        with
        | Error _ -> false
        | Ok r ->
          Result.is_ok
            (Wfc_consensus.Check.result_exn
               (Wfc_consensus.Check.verify r.Theorem5.compiled))))

(* sequential-history sanity for generated specs: deterministic runs exist
   for all invocation sequences *)
let prop_generated_specs_wellformed =
  QCheck.Test.make ~count:100 ~name:"generated specs validate"
    arb_general
    (fun t ->
      let spec = spec_of_table t in
      Result.is_ok (Type_spec.validate spec)
      && Type_spec.is_deterministic spec
      (* declared-oblivious tables must check oblivious; a random
         non-oblivious table may accidentally be oblivious, so only the
         forward direction is guaranteed *)
      && ((not t.oblivious) || Type_spec.check_oblivious spec))

let () =
  Alcotest.run "wfc_properties"
    [
      ( "random-type pipeline",
        [
          QCheck_alcotest.to_alcotest prop_generated_specs_wellformed;
          QCheck_alcotest.to_alcotest prop_decide_agrees_with_pair_search;
          QCheck_alcotest.to_alcotest prop_witness_verifies;
          QCheck_alcotest.to_alcotest prop_oblivious_construction_conforms;
          QCheck_alcotest.to_alcotest prop_general_construction_conforms;
          QCheck_alcotest.to_alcotest prop_lemmas_on_random_types;
          QCheck_alcotest.to_alcotest prop_theorem5_on_random_types;
        ] );
    ]
