(* E2 — the Section 4.1 register-construction chain.

   Positive tests: every construction satisfies its advertised register
   condition (safe / regular / atomic) on ALL interleavings of small
   workloads. Negative controls: the classic broken variants fail exactly
   the condition they are supposed to fail. Stacked tests: the composed
   chain (down to SRSW safe/regular bits) still works. *)

open Wfc_spec
open Wfc_zoo
open Wfc_program
open Wfc_registers

let bool_domain = [ Value.falsity; Value.truth ]

let w v = Ops.write v
let wi i = Ops.write (Value.int i)
let r = Ops.read

(* Explore all executions, applying [check] to each leaf history. *)
let forall_leaves impl ~workloads ~check =
  let failure = ref None in
  let stats =
    Wfc_sim.Exec.explore impl ~workloads
      ~on_leaf:(fun leaf ->
        match check leaf.Wfc_sim.Exec.ops with
        | Ok () -> ()
        | Error msg ->
          failure := Some msg;
          raise Wfc_sim.Exec.Stop)
      ()
  in
  Alcotest.(check int) "wait-free (no fuel overflow)" 0
    stats.Wfc_sim.Exec.overflows;
  (match !failure with
  | Some msg -> Alcotest.failf "violation: %s" msg
  | None -> ());
  stats.Wfc_sim.Exec.leaves

let exists_violation impl ~workloads ~check =
  let found = ref false in
  let (_ : Wfc_sim.Exec.stats) =
    Wfc_sim.Exec.explore impl ~workloads
      ~on_leaf:(fun leaf ->
        if Result.is_error (check leaf.Wfc_sim.Exec.ops) then begin
          found := true;
          raise Wfc_sim.Exec.Stop
        end)
      ()
  in
  !found

let safe_check ~init ops =
  Result.map_error
    (Fmt.str "%a" Wfc_linearize.Register_props.pp_failure)
    (Wfc_linearize.Register_props.check_safe ~init ~domain:bool_domain ops)

let regular_check ~init ops =
  Result.map_error
    (Fmt.str "%a" Wfc_linearize.Register_props.pp_failure)
    (Wfc_linearize.Register_props.check_regular ~init ops)

let atomic_check ~spec ~init ops =
  match Wfc_linearize.Linearizability.check ~spec ~init ops with
  | Wfc_linearize.Linearizability.Linearizable _ -> Ok ()
  | Wfc_linearize.Linearizability.Not_linearizable m -> Error m

(* --- C1: replication ----------------------------------------------------- *)

let test_c1_safe () =
  let impl = Replicate.mrsw_bit ~base:`Safe ~readers:2 ~init:false () in
  let leaves =
    forall_leaves impl
      ~workloads:[| [ w Value.truth ]; [ r; r ]; [ r ] |]
      ~check:(safe_check ~init:Value.falsity)
  in
  Alcotest.(check bool) "explored some interleavings" true (leaves > 50)

let test_c1_regular () =
  let impl = Replicate.mrsw_bit ~base:`Regular ~readers:2 ~init:false () in
  ignore
    (forall_leaves impl
       ~workloads:[| [ w Value.truth ]; [ r; r ]; [ r ] |]
       ~check:(regular_check ~init:Value.falsity))

let test_c1_safe_not_regular () =
  (* replication over safe bits is NOT regular: a same-value write can make
     an overlapping read return the complement. *)
  let impl = Replicate.mrsw_bit ~base:`Safe ~readers:1 ~init:false () in
  Alcotest.(check bool) "safe replication fails regularity" true
    (exists_violation impl
       ~workloads:[| [ w Value.falsity ]; [ r ] |]
       ~check:(regular_check ~init:Value.falsity))

let test_c1_roles () =
  let impl = Replicate.mrsw_bit ~base:`Safe ~readers:1 ~init:false () in
  Alcotest.(check bool) "reader cannot write" true
    (match impl.Implementation.program ~proc:1 ~inv:(w Value.truth) Value.unit with
    | _ -> false
    | exception Roles.Role_violation _ -> true);
  Alcotest.(check bool) "writer cannot read" true
    (match impl.Implementation.program ~proc:0 ~inv:r Value.unit with
    | _ -> false
    | exception Roles.Role_violation _ -> true)

(* --- C2: write-on-change --------------------------------------------------- *)

let test_c2_regular () =
  let impl = On_change.regular_bit ~readers:1 ~init:false () in
  ignore
    (forall_leaves impl
       ~workloads:[| [ w Value.falsity; w Value.truth; w Value.truth ]; [ r; r ] |]
       ~check:(regular_check ~init:Value.falsity))

let test_c2_unguarded_fails () =
  let impl = On_change.regular_bit ~guard:false ~readers:1 ~init:false () in
  Alcotest.(check bool) "same-value write breaks regularity" true
    (exists_violation impl
       ~workloads:[| [ w Value.falsity ]; [ r ] |]
       ~check:(regular_check ~init:Value.falsity))

let test_c2_guard_suppresses_accesses () =
  (* a guarded same-value write performs zero base accesses *)
  let impl = On_change.regular_bit ~readers:1 ~init:false () in
  let resps, leaf =
    Wfc_sim.Exec.sequential_oracle impl [ w Value.falsity ]
  in
  Alcotest.(check int) "one response" 1 (List.length resps);
  Alcotest.(check int) "no base access" 0
    (Array.fold_left ( + ) 0 leaf.Wfc_sim.Exec.accesses)

(* --- C3: unary code ---------------------------------------------------------- *)

let test_c3_regular () =
  let impl = Unary.regular_reg ~readers:1 ~values:2 ~init:0 () in
  ignore
    (forall_leaves impl
       ~workloads:[| [ wi 1 ]; [ r; r ] |]
       ~check:(regular_check ~init:(Value.int 0)))

let test_c3_regular_three_values () =
  let impl = Unary.regular_reg ~readers:1 ~values:3 ~init:2 () in
  ignore
    (forall_leaves impl
       ~workloads:[| [ wi 0 ]; [ r; r ] |]
       ~check:(regular_check ~init:(Value.int 2)))

let test_c3_clear_first_fails () =
  let impl = Unary.regular_reg ~set_first:false ~readers:1 ~values:3 ~init:0 () in
  Alcotest.(check bool) "clear-before-set loses the value" true
    (exists_violation impl
       ~workloads:[| [ wi 2 ]; [ r ] |]
       ~check:(regular_check ~init:(Value.int 0)))

let test_c3_sequential () =
  let impl = Unary.regular_reg ~readers:1 ~values:4 ~init:1 () in
  (* sequential behaviour must be exactly a register; run writer ops then
     reader ops via exploration restricted to... simplest: separate runs *)
  let sched = Wfc_sim.Schedulers.round_robin in
  let leaf =
    Wfc_sim.Exec.run impl
      ~workloads:[| [ wi 3; wi 0 ]; [] |]
      ~pick_proc:sched.Wfc_sim.Schedulers.pick_proc
      ~pick_alt:sched.Wfc_sim.Schedulers.pick_alt ()
  in
  Alcotest.(check int) "writes done" 2 (List.length leaf.Wfc_sim.Exec.ops)

(* --- C4: timestamps ------------------------------------------------------------ *)

let unbounded_spec = Register.unbounded ~ports:2

let test_c4_atomic () =
  let impl = Timestamp.atomic_srsw ~init:(Value.int 0) () in
  ignore
    (forall_leaves impl
       ~workloads:[| [ wi 1; wi 2 ]; [ r; r; r ] |]
       ~check:(atomic_check ~spec:unbounded_spec ~init:(Value.int 0)))

let test_c4_no_cache_fails () =
  let impl = Timestamp.atomic_srsw ~cache:false ~init:(Value.int 0) () in
  Alcotest.(check bool) "new/old inversion without reader cache" true
    (exists_violation impl
       ~workloads:[| [ wi 1 ]; [ r; r ] |]
       ~check:(atomic_check ~spec:unbounded_spec ~init:(Value.int 0)))

(* --- C5: readers' table --------------------------------------------------------- *)

let test_c5_atomic () =
  let impl = Readers_table.atomic_mrsw ~readers:2 ~init:(Value.int 0) () in
  ignore
    (forall_leaves impl
       ~workloads:[| [ wi 1 ]; [ r ]; [ r ] |]
       ~check:
         (atomic_check ~spec:(Register.unbounded ~ports:3) ~init:(Value.int 0)))

let test_c5_no_report_fails () =
  let impl =
    Readers_table.atomic_mrsw ~report:false ~readers:2 ~init:(Value.int 0) ()
  in
  Alcotest.(check bool) "two readers invert without reports" true
    (exists_violation impl
       ~workloads:[| [ wi 1 ]; [ r ]; [ r ] |]
       ~check:
         (atomic_check ~spec:(Register.unbounded ~ports:3) ~init:(Value.int 0)))

let test_c5_single_reader_cache () =
  (* with one reader the local cache alone must already give atomicity *)
  let impl =
    Readers_table.atomic_mrsw ~report:false ~readers:1 ~init:(Value.int 0) ()
  in
  ignore
    (forall_leaves impl
       ~workloads:[| [ wi 1; wi 2 ]; [ r; r ] |]
       ~check:
         (atomic_check ~spec:(Register.unbounded ~ports:2) ~init:(Value.int 0)))

(* --- C6: multi-writer ------------------------------------------------------------- *)

let test_c6_atomic () =
  let impl = Multi_writer.atomic_mrmw ~writers:2 ~extra_readers:1 ~init:(Value.int 0) () in
  ignore
    (forall_leaves impl
       ~workloads:[| [ wi 1 ]; [ wi 2 ]; [ r; r ] |]
       ~check:
         (atomic_check ~spec:(Register.unbounded ~ports:3) ~init:(Value.int 0)))

let test_c6_writers_also_read () =
  let impl = Multi_writer.atomic_mrmw ~writers:2 ~extra_readers:0 ~init:(Value.int 0) () in
  ignore
    (forall_leaves impl
       ~workloads:[| [ wi 1; r ]; [ wi 2; r ] |]
       ~check:
         (atomic_check ~spec:(Register.unbounded ~ports:2) ~init:(Value.int 0)))

let test_c6_read_only_role () =
  let impl = Multi_writer.atomic_mrmw ~writers:1 ~extra_readers:1 ~init:(Value.int 0) () in
  Alcotest.(check bool) "extra reader cannot write" true
    (match impl.Implementation.program ~proc:1 ~inv:(wi 1) Value.unit with
    | _ -> false
    | exception Roles.Role_violation _ -> true)

(* --- Simpson's four-slot algorithm --------------------------------------------------- *)

let simpson_domain = [ Value.int 0; Value.int 1; Value.int 2 ]

let test_simpson_atomic_single_write () =
  let impl = Simpson.atomic_srsw ~domain:simpson_domain ~init:(Value.int 0) () in
  ignore
    (forall_leaves impl
       ~workloads:[| [ wi 1 ]; [ r; r ] |]
       ~check:
         (atomic_check ~spec:(Register.unbounded ~ports:2) ~init:(Value.int 0)))

let test_simpson_atomic_two_writes () =
  let impl = Simpson.atomic_srsw ~domain:simpson_domain ~init:(Value.int 0) () in
  let leaves =
    forall_leaves impl
      ~workloads:[| [ wi 1; wi 2 ]; [ r; r ] |]
      ~check:
        (atomic_check ~spec:(Register.unbounded ~ports:2) ~init:(Value.int 0))
  in
  Alcotest.(check bool) "big exhaustive space" true (leaves > 100_000)

let test_simpson_slot_isolation () =
  (* the four-slot property itself: the writer never writes a data slot the
     reader is concurrently reading. With two-phase safe data slots this is
     observable: a safe read overlapping a write would branch over the whole
     domain, so on every path each READ of a data slot must return a value
     actually written there — check by regularity of the implemented
     register on every leaf (safe garbage would break it). *)
  let impl = Simpson.atomic_srsw ~domain:simpson_domain ~init:(Value.int 0) () in
  ignore
    (forall_leaves impl
       ~workloads:[| [ wi 2; wi 1 ]; [ r ] |]
       ~check:(regular_check ~init:(Value.int 0)))

let test_simpson_no_handshake_fails () =
  let impl =
    Simpson.atomic_srsw ~handshake:false ~domain:simpson_domain
      ~init:(Value.int 0) ()
  in
  Alcotest.(check bool) "no handshake: atomicity broken" true
    (exists_violation impl
       ~workloads:[| [ wi 1; wi 2 ]; [ r; r ] |]
       ~check:
         (atomic_check ~spec:(Register.unbounded ~ports:2) ~init:(Value.int 0)))

let prop_simpson_random_long_runs =
  QCheck.Test.make ~count:40 ~name:"simpson: long random runs stay atomic"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let impl =
        Simpson.atomic_srsw ~domain:simpson_domain ~init:(Value.int 0) ()
      in
      let sched = Wfc_sim.Schedulers.random rng in
      let leaf =
        Wfc_sim.Exec.run impl
          ~workloads:[| [ wi 1; wi 2; wi 0; wi 1 ]; [ r; r; r; r; r ] |]
          ~pick_proc:sched.Wfc_sim.Schedulers.pick_proc
          ~pick_alt:sched.Wfc_sim.Schedulers.pick_alt ()
      in
      Wfc_linearize.Linearizability.is_linearizable
        ~spec:(Register.unbounded ~ports:2)
        ~init:(Value.int 0) leaf.Wfc_sim.Exec.ops)

(* --- atomic snapshots (E16) ----------------------------------------------------------- *)

let snap_domain = [ Value.int 0; Value.int 1 ]

let lin_snapshot impl ~workloads =
  match
    Wfc_linearize.Linearizability.check_all_executions impl ~workloads ()
  with
  | Ok stats -> Ok stats.Wfc_sim.Exec.leaves
  | Error e -> Error e

let test_snapshot_basic () =
  let impl = Snapshot.single_writer ~procs:2 ~domain:snap_domain () in
  match
    lin_snapshot impl
      ~workloads:
        [| [ Snapshot_type.update (Value.int 1) ]; [ Snapshot_type.scan ] |]
  with
  (* the fused incremental checker runs on the reduced (dedup+POR) engine,
     so leaf counts are engine-specific — only guard non-triviality *)
  | Ok leaves -> Alcotest.(check bool) "explored" true (leaves > 0)
  | Error e -> Alcotest.fail e

let test_snapshot_concurrent_update_scan () =
  let impl = Snapshot.single_writer ~procs:2 ~domain:snap_domain () in
  match
    lin_snapshot impl
      ~workloads:
        [|
          [ Snapshot_type.update (Value.int 1); Snapshot_type.scan ];
          [ Snapshot_type.update (Value.int 0) ];
        |]
  with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

let test_snapshot_borrow_path () =
  (* a double mover inside the scan's interval forces view borrowing *)
  let impl = Snapshot.single_writer ~procs:2 ~domain:snap_domain () in
  match
    lin_snapshot impl
      ~workloads:
        [|
          [ Snapshot_type.update (Value.int 1); Snapshot_type.update (Value.int 0) ];
          [ Snapshot_type.scan ];
        |]
  with
  | Ok leaves -> Alcotest.(check bool) "borrow space explored" true (leaves > 0)
  | Error e -> Alcotest.fail e

let test_snapshot_naive_refuted () =
  let impl = Snapshot.single_writer ~naive:true ~procs:3 ~domain:snap_domain () in
  Alcotest.(check bool) "single collect is not atomic" true
    (Result.is_error
       (lin_snapshot impl
          ~workloads:
            [|
              [ Snapshot_type.scan ];
              [ Snapshot_type.update (Value.int 1) ];
              [ Snapshot_type.update (Value.int 1) ];
            |]))

let test_snapshot_sequential () =
  let impl = Snapshot.single_writer ~procs:2 ~domain:snap_domain () in
  let resps, _ =
    Wfc_sim.Exec.sequential_oracle impl
      [ Snapshot_type.scan; Snapshot_type.update (Value.int 1); Snapshot_type.scan ]
  in
  Alcotest.(check (list string))
    "views evolve"
    [ "[0; 0]"; "ok"; "[1; 0]" ]
    (List.map Value.to_string resps)

let prop_snapshot_three_procs_random =
  QCheck.Test.make ~count:60
    ~name:"snapshot n=3: random + scanner-starving schedules"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let impl = Snapshot.single_writer ~procs:3 ~domain:snap_domain () in
      let sched =
        if seed mod 2 = 0 then Wfc_sim.Schedulers.random rng
        else Wfc_sim.Schedulers.handicap rng ~slow:[ 0 ] ~bias:6
      in
      let leaf =
        Wfc_sim.Exec.run impl
          ~workloads:
            [|
              [ Snapshot_type.scan; Snapshot_type.scan ];
              [
                Snapshot_type.update (Value.int 1);
                Snapshot_type.update (Value.int 0);
              ];
              [ Snapshot_type.update (Value.int 1); Snapshot_type.scan ];
            |]
          ~pick_proc:sched.Wfc_sim.Schedulers.pick_proc
          ~pick_alt:sched.Wfc_sim.Schedulers.pick_alt ()
      in
      Wfc_linearize.Linearizability.is_linearizable
        ~spec:(Snapshot_type.spec ~ports:3 ~domain:snap_domain)
        leaf.Wfc_sim.Exec.ops)

let test_snapshot_spec_is_525_material () =
  (* the snapshot TYPE is deterministic and non-oblivious: §5.2 must find a
     pair and build a working one-use bit from a snapshot object *)
  let spec = Snapshot_type.spec ~ports:2 ~domain:snap_domain in
  Alcotest.(check bool) "non-oblivious" false (Type_spec.check_oblivious spec);
  match Wfc_core.Nontrivial_pair.search spec with
  | Ok (Some p) ->
    let impl = Wfc_core.Nontrivial_pair.one_use_bit spec p () in
    (match Wfc_core.One_use_bit.check_impl impl with
    | Ok () -> ()
    | Error e -> Alcotest.fail e)
  | Ok None -> Alcotest.fail "snapshot must be non-trivial"
  | Error e -> Alcotest.fail e

(* --- stacked chains ------------------------------------------------------------------ *)

let test_stack_regular_from_safe () =
  let impl = Chain.regular_bounded_from_safe_bits ~readers:1 ~values:2 ~init:0 () in
  Alcotest.(check int) "2 SRSW safe bits" 2 (Chain.srsw_bit_count impl);
  ignore
    (forall_leaves impl
       ~workloads:[| [ wi 1 ]; [ r; r ] |]
       ~check:(regular_check ~init:(Value.int 0)))

let test_stack_regular_from_safe_two_readers () =
  let impl = Chain.regular_bounded_from_safe_bits ~readers:2 ~values:2 ~init:1 () in
  Alcotest.(check int) "values×readers safe bits" 4 (Chain.srsw_bit_count impl);
  ignore
    (forall_leaves impl
       ~workloads:[| [ wi 0 ]; [ r ]; [ r ] |]
       ~check:(regular_check ~init:(Value.int 1)))

let test_stack_atomic_mrsw () =
  let impl = Chain.atomic_mrsw_from_regular_srsw ~readers:2 ~init:(Value.int 0) () in
  Alcotest.(check int) "readers + readers(readers-1) weak registers" 4
    (Chain.srsw_bit_count impl);
  ignore
    (forall_leaves impl
       ~workloads:[| [ wi 1 ]; [ r ]; [ r ] |]
       ~check:
         (atomic_check ~spec:(Register.unbounded ~ports:3) ~init:(Value.int 0)))

let test_stack_atomic_mrmw () =
  let impl =
    Chain.atomic_mrmw_from_regular_srsw ~writers:2 ~extra_readers:0
      ~init:(Value.int 0) ()
  in
  Alcotest.(check bool) "all weak-register bases" true
    (Chain.srsw_bit_count impl = Implementation.base_object_count impl);
  ignore
    (forall_leaves impl
       ~workloads:[| [ wi 1 ]; [ r ] |]
       ~check:
         (atomic_check ~spec:(Register.unbounded ~ports:2) ~init:(Value.int 0)))

let test_stack_atomic_mrmw_concurrent_writes () =
  let impl =
    Chain.atomic_mrmw_from_mrsw ~writers:2 ~extra_readers:0 ~init:(Value.int 0) ()
  in
  ignore
    (forall_leaves impl
       ~workloads:[| [ wi 1; r ]; [ wi 2; r ] |]
       ~check:
         (atomic_check ~spec:(Register.unbounded ~ports:2) ~init:(Value.int 0)))

(* --- randomized deep runs -------------------------------------------------------------- *)

let prop_stacked_regular_random_runs =
  QCheck.Test.make ~count:40 ~name:"stacked regular register: random schedules"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let impl =
        Chain.regular_bounded_from_safe_bits ~readers:2 ~values:3 ~init:0 ()
      in
      let sched = Wfc_sim.Schedulers.random rng in
      let leaf =
        Wfc_sim.Exec.run impl
          ~workloads:[| [ wi 2; wi 1; wi 2 ]; [ r; r; r ]; [ r; r ] |]
          ~pick_proc:sched.Wfc_sim.Schedulers.pick_proc
          ~pick_alt:sched.Wfc_sim.Schedulers.pick_alt ()
      in
      Result.is_ok (regular_check ~init:(Value.int 0) leaf.Wfc_sim.Exec.ops))

let prop_mrmw_random_runs =
  QCheck.Test.make ~count:40 ~name:"MRMW atomic register: random schedules"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let impl =
        Multi_writer.atomic_mrmw ~writers:3 ~extra_readers:1 ~init:(Value.int 0) ()
      in
      let sched = Wfc_sim.Schedulers.random rng in
      let leaf =
        Wfc_sim.Exec.run impl
          ~workloads:[| [ wi 1; r ]; [ wi 2; r ]; [ r; wi 3 ]; [ r; r ] |]
          ~pick_proc:sched.Wfc_sim.Schedulers.pick_proc
          ~pick_alt:sched.Wfc_sim.Schedulers.pick_alt ()
      in
      Result.is_ok
        (atomic_check
           ~spec:(Register.unbounded ~ports:4)
           ~init:(Value.int 0) leaf.Wfc_sim.Exec.ops))

let () =
  Alcotest.run "wfc_registers"
    [
      ( "C1 replicate",
        [
          Alcotest.test_case "safe MRSW from safe SRSW" `Quick test_c1_safe;
          Alcotest.test_case "regular MRSW from regular SRSW" `Quick
            test_c1_regular;
          Alcotest.test_case "safe is not regular" `Quick test_c1_safe_not_regular;
          Alcotest.test_case "role discipline" `Quick test_c1_roles;
        ] );
      ( "C2 on-change",
        [
          Alcotest.test_case "regular from safe" `Quick test_c2_regular;
          Alcotest.test_case "unguarded fails" `Quick test_c2_unguarded_fails;
          Alcotest.test_case "guard suppresses accesses" `Quick
            test_c2_guard_suppresses_accesses;
        ] );
      ( "C3 unary",
        [
          Alcotest.test_case "regular multivalue" `Quick test_c3_regular;
          Alcotest.test_case "three values" `Quick test_c3_regular_three_values;
          Alcotest.test_case "clear-first fails" `Quick test_c3_clear_first_fails;
          Alcotest.test_case "sequential writes" `Quick test_c3_sequential;
        ] );
      ( "C4 timestamp",
        [
          Alcotest.test_case "atomic SRSW" `Quick test_c4_atomic;
          Alcotest.test_case "no cache fails" `Quick test_c4_no_cache_fails;
        ] );
      ( "C5 readers' table",
        [
          Alcotest.test_case "atomic MRSW" `Quick test_c5_atomic;
          Alcotest.test_case "no report fails" `Quick test_c5_no_report_fails;
          Alcotest.test_case "single reader cache" `Quick
            test_c5_single_reader_cache;
        ] );
      ( "C6 multi-writer",
        [
          Alcotest.test_case "atomic MRMW" `Quick test_c6_atomic;
          Alcotest.test_case "writers also read" `Quick test_c6_writers_also_read;
          Alcotest.test_case "read-only role" `Quick test_c6_read_only_role;
        ] );
      ( "Simpson four-slot",
        [
          Alcotest.test_case "atomic, single write" `Quick
            test_simpson_atomic_single_write;
          Alcotest.test_case "atomic, two writes" `Quick
            test_simpson_atomic_two_writes;
          Alcotest.test_case "slot isolation (regularity)" `Quick
            test_simpson_slot_isolation;
          Alcotest.test_case "no handshake fails" `Quick
            test_simpson_no_handshake_fails;
          QCheck_alcotest.to_alcotest prop_simpson_random_long_runs;
        ] );
      ( "snapshots (E16)",
        [
          Alcotest.test_case "update vs scan" `Quick test_snapshot_basic;
          Alcotest.test_case "concurrent update+scan" `Quick
            test_snapshot_concurrent_update_scan;
          Alcotest.test_case "borrow path" `Quick test_snapshot_borrow_path;
          Alcotest.test_case "naive single collect refuted" `Quick
            test_snapshot_naive_refuted;
          Alcotest.test_case "sequential views" `Quick test_snapshot_sequential;
          Alcotest.test_case "snapshot type feeds §5.2" `Quick
            test_snapshot_spec_is_525_material;
          QCheck_alcotest.to_alcotest prop_snapshot_three_procs_random;
        ] );
      ( "stacked chains",
        [
          Alcotest.test_case "regular from safe bits" `Quick
            test_stack_regular_from_safe;
          Alcotest.test_case "regular, two readers" `Quick
            test_stack_regular_from_safe_two_readers;
          Alcotest.test_case "atomic MRSW full" `Quick test_stack_atomic_mrsw;
          Alcotest.test_case "atomic MRMW full" `Quick test_stack_atomic_mrmw;
          Alcotest.test_case "MRMW concurrent writes" `Quick
            test_stack_atomic_mrmw_concurrent_writes;
        ] );
      ( "randomized",
        [
          QCheck_alcotest.to_alcotest prop_stacked_regular_random_runs;
          QCheck_alcotest.to_alcotest prop_mrmw_random_runs;
        ] );
    ]
