(* E13 — resilience of long-running verification: checkpoint/resume with
   completeness stitched across segments, graceful degradation of the
   supervised domain pool, the memory watchdog, and total (never-raising)
   parsing of the witness/checkpoint text codecs. *)

open Wfc_spec
open Wfc_zoo
open Wfc_consensus
module Explore = Wfc_sim.Explore
module Checkpoint = Wfc_sim.Checkpoint
module Faults = Wfc_sim.Faults
module Witness = Wfc_sim.Witness
module Monotime = Wfc_sim.Monotime

let cas3 () = Protocols.from_cas ~procs:3 ()

let workloads3 =
  [|
    [ Ops.propose Value.truth ];
    [ Ops.propose Value.falsity ];
    [ Ops.propose Value.truth ];
  |]

let temp_ck () = Filename.temp_file "wfc_resilience" ".ck"

let completeness_of (s : Explore.stats) = s.Explore.completeness

(* --- monotonic time -------------------------------------------------------- *)

let test_monotime_nondecreasing () =
  let t0 = Monotime.now () in
  Alcotest.(check bool) "positive" true (t0 > 0.);
  let prev = ref t0 in
  for _ = 1 to 10_000 do
    let t = Monotime.now () in
    if t < !prev then Alcotest.failf "clock went backwards: %f < %f" t !prev;
    prev := t
  done

(* --- checkpoint codec ------------------------------------------------------ *)

let sample_trace =
  [
    { Faults.proc = 0; kind = Faults.Step 1 };
    { Faults.proc = 1; kind = Faults.Crash };
    { Faults.proc = 0; kind = Faults.Glitch 0 };
    { Faults.proc = 1; kind = Faults.Recover };
    { Faults.proc = 2; kind = Faults.Wedge };
  ]

let sample_checkpoint () =
  let faults =
    {
      Faults.max_crashes = 1;
      max_recoveries = 1;
      max_glitches = 2;
      degraded =
        [
          (0, Faults.Stale_reads 2);
          (1, Faults.Safe_reads [ Value.truth; Value.falsity ]);
        ];
    }
  in
  let counts =
    {
      Checkpoint.leaves = 42;
      nodes = 999;
      max_events = 12;
      max_op_steps = 3;
      max_accesses = [| 4; 5 |];
      overflows = 0;
      pruned = 7;
      sleep_skips = 1;
      degraded = 2;
      evictions = 1;
      spilled = 3;
      probabilistic = true;
    }
  in
  Checkpoint.make
    ~meta:[ ("protocol", "cas"); ("check.vector", "3") ]
    ~engine:
      {
        Checkpoint.dedup = true;
        por = false;
        domains = 2;
        intern = true;
        symmetry = false;
        flat = true;
      }
    ~fuel:10_000 ~budget_left:1234 ~faults
    ~workloads:
      [|
        [ Ops.propose Value.truth ];
        [];
        [ Ops.propose Value.falsity; Ops.propose Value.truth ];
      |]
    ~counts
    ~frontier:[ sample_trace; []; [ { Faults.proc = 1; kind = Faults.Step 0 } ] ]
    ()

let test_checkpoint_roundtrip () =
  let ck = sample_checkpoint () in
  let s = Checkpoint.to_string ck in
  match Checkpoint.of_string s with
  | Error e -> Alcotest.failf "round-trip failed: %s" e
  | Ok ck' ->
    Alcotest.(check string) "canonical form stable" s (Checkpoint.to_string ck');
    Alcotest.(check int) "leaves" 42 ck'.Checkpoint.counts.Checkpoint.leaves;
    Alcotest.(check int) "frontier size" 3 (List.length ck'.Checkpoint.frontier);
    Alcotest.(check (option string))
      "meta preserved" (Some "3")
      (Checkpoint.meta_find ck' "check.vector")

let test_checkpoint_digest_rejects_tampering () =
  let s = Checkpoint.to_string (sample_checkpoint ()) in
  (* corrupt one payload character (a count digit), keeping the digest *)
  let tampered = String.map (fun c -> if c = '9' then '8' else c) s in
  (match Checkpoint.of_string tampered with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "tampered body accepted");
  match Checkpoint.of_string "wfc-checkpoint/1\ndigest 00000000\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad digest accepted"

let test_checkpoint_of_string_total () =
  let s = Checkpoint.to_string (sample_checkpoint ()) in
  let rng = Random.State.make [| 7 |] in
  for _ = 1 to 500 do
    let b = Bytes.of_string s in
    let i = Random.State.int rng (Bytes.length b) in
    Bytes.set b i (Char.chr (Random.State.int rng 256));
    match Checkpoint.of_string (Bytes.to_string b) with
    | Ok _ | Error _ -> ()
    | exception e ->
      Alcotest.failf "of_string raised %s on mutated input at byte %d"
        (Printexc.to_string e) i
  done;
  (* truncations must be rejected, not crash.  Stop at [len - 2]: cutting
     only the trailing newline leaves a syntactically complete checkpoint. *)
  for n = 0 to String.length s - 2 do
    match Checkpoint.of_string (String.sub s 0 n) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "truncation to %d bytes accepted" n
    | exception e ->
      Alcotest.failf "of_string raised %s on %d-byte truncation"
        (Printexc.to_string e) n
  done

let test_checkpoint_mismatch_detected () =
  let ck = sample_checkpoint () in
  let same =
    Checkpoint.describe_mismatch ck ~engine:ck.Checkpoint.engine
      ~fuel:ck.Checkpoint.fuel ~faults:ck.Checkpoint.faults
      ~workloads:ck.Checkpoint.workloads
  in
  Alcotest.(check bool) "same problem accepted" true (same = None);
  let wrong_fuel =
    Checkpoint.describe_mismatch ck ~engine:ck.Checkpoint.engine ~fuel:99
      ~faults:ck.Checkpoint.faults ~workloads:ck.Checkpoint.workloads
  in
  Alcotest.(check bool) "fuel mismatch reported" true (wrong_fuel <> None);
  let wrong_workloads =
    Checkpoint.describe_mismatch ck ~engine:ck.Checkpoint.engine
      ~fuel:ck.Checkpoint.fuel ~faults:ck.Checkpoint.faults
      ~workloads:[| [ Ops.propose Value.truth ] |]
  in
  Alcotest.(check bool) "workload mismatch reported" true
    (wrong_workloads <> None);
  let wrong_faults =
    Checkpoint.describe_mismatch ck ~engine:ck.Checkpoint.engine
      ~fuel:ck.Checkpoint.fuel ~faults:Faults.none
      ~workloads:ck.Checkpoint.workloads
  in
  Alcotest.(check bool) "adversary mismatch reported" true (wrong_faults <> None)

(* The legacy wfc-checkpoint/1 format (MD5 digest, no flat/spilled/
   probabilistic fields) must still parse, with the new fields at their
   defaults — and re-serialize as /2. *)
let test_checkpoint_v1_still_parses () =
  let ck = sample_checkpoint () in
  let ck =
    {
      ck with
      Checkpoint.engine = { ck.Checkpoint.engine with Checkpoint.flat = false };
      counts =
        { ck.Checkpoint.counts with Checkpoint.spilled = 0;
          probabilistic = false };
    }
  in
  (* reconstruct the v1 serialization: same body with the pre-/2 engine and
     counts lines, MD5 digest, /1 header *)
  let body =
    match String.split_on_char '\n' (Checkpoint.to_string ck) with
    | _header :: _digest :: rest ->
      rest
      |> List.map (fun l ->
             if String.length l >= 7 && String.sub l 0 7 = "engine " then
               "engine dedup=1 por=0 domains=2 intern=1 symmetry=0"
             else if String.length l >= 7 && String.sub l 0 7 = "counts " then
               "counts leaves=42 nodes=999 max_events=12 max_op_steps=3 \
                overflows=0 pruned=7 sleep_skips=1 degraded=2 evictions=1"
             else l)
      |> String.concat "\n"
    | _ -> Alcotest.fail "unexpected checkpoint serialization"
  in
  let v1 =
    "wfc-checkpoint/1\ndigest "
    ^ Digest.to_hex (Digest.string body)
    ^ "\n" ^ body
  in
  (match Checkpoint.of_string v1 with
  | Error e -> Alcotest.failf "v1 checkpoint refused: %s" e
  | Ok ck' ->
    Alcotest.(check bool) "flat defaults to false" false
      ck'.Checkpoint.engine.Checkpoint.flat;
    Alcotest.(check int) "spilled defaults to 0" 0
      ck'.Checkpoint.counts.Checkpoint.spilled;
    Alcotest.(check bool) "probabilistic defaults to false" false
      ck'.Checkpoint.counts.Checkpoint.probabilistic;
    Alcotest.(check int) "v1 counts parsed" 42
      ck'.Checkpoint.counts.Checkpoint.leaves;
    Alcotest.(check bool) "re-serializes as /2" true
      (String.length (Checkpoint.to_string ck') > 16
      && String.sub (Checkpoint.to_string ck') 0 16 = "wfc-checkpoint/2"));
  (* a corrupted v1 body is still refused by its MD5 digest *)
  let tampered =
    String.map (fun c -> if c = '9' then '8' else c) v1
  in
  match Checkpoint.of_string tampered with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "tampered v1 body accepted"

let test_checkpoint_meta_validation () =
  match
    Checkpoint.make
      ~meta:[ ("bad key", "v") ]
      ~engine:
        {
          Checkpoint.dedup = false;
          por = false;
          domains = 1;
          intern = false;
          symmetry = false;
          flat = false;
        }
      ~fuel:1 ~faults:Faults.none ~workloads:[| [] |]
      ~counts:(Checkpoint.zero_counts ~n_objs:0)
      ~frontier:[] ()
  with
  | _ -> Alcotest.fail "meta key with a space was accepted"
  | exception Invalid_argument _ -> ()

(* --- witness codec: qcheck round-trip + fuzz ------------------------------- *)

let gen_kind =
  QCheck.Gen.(
    oneof
      [
        map (fun i -> Faults.Step i) (int_bound 5);
        map (fun i -> Faults.Glitch i) (int_bound 3);
        return Faults.Crash;
        return Faults.Recover;
        return Faults.Wedge;
      ])

let gen_decision =
  QCheck.Gen.(
    map2 (fun p kind -> { Faults.proc = p; kind }) (int_bound 4) gen_kind)

let gen_trace = QCheck.Gen.(list_size (int_bound 24) gen_decision)

let gen_inv =
  QCheck.Gen.(
    oneof
      [
        map (fun b -> Ops.propose (Value.bool b)) bool;
        return Ops.read;
        map (fun i -> Ops.write (Value.int i)) (int_bound 9);
        map (fun i -> Ops.fetch_add i) (int_bound 9);
      ])

let gen_workloads =
  QCheck.Gen.(
    map Array.of_list
      (list_size (int_range 1 4) (list_size (int_bound 3) gen_inv)))

let gen_faults =
  QCheck.Gen.(
    map3
      (fun c r g ->
        {
          Faults.max_crashes = c;
          max_recoveries = r;
          max_glitches = g;
          degraded = (if g > 0 then [ (0, Faults.Stale_reads 1) ] else []);
        })
      (int_bound 2) (int_bound 2) (int_bound 2))

let gen_witness =
  QCheck.Gen.(
    map3
      (fun workloads faults trace -> Witness.make ~workloads ~faults trace)
      gen_workloads gen_faults gen_trace)

let arb_witness =
  QCheck.make ~print:(fun w -> Witness.to_string w) gen_witness

let prop_witness_roundtrip =
  QCheck.Test.make ~count:300 ~name:"witness text codec round-trips"
    arb_witness (fun w ->
      match Witness.of_string (Witness.to_string w) with
      | Ok w' -> String.equal (Witness.to_string w) (Witness.to_string w')
      | Error e -> QCheck.Test.fail_reportf "parse failed: %s" e)

let prop_witness_of_string_total =
  (* mutate one byte anywhere: the parser may accept or reject, never raise *)
  let arb =
    QCheck.make
      ~print:(fun (w, i, c) ->
        Fmt.str "byte %d -> %C in:@.%s" i c (Witness.to_string w))
      QCheck.Gen.(
        map3 (fun w i c -> (w, i, c)) gen_witness (int_bound 4096) (map Char.chr (int_bound 255)))
  in
  QCheck.Test.make ~count:500 ~name:"witness parser is total under corruption"
    arb (fun (w, i, c) ->
      let s = Witness.to_string w in
      let b = Bytes.of_string s in
      Bytes.set b (i mod Bytes.length b) c;
      match Witness.of_string (Bytes.to_string b) with
      | Ok _ | Error _ -> true
      | exception e ->
        QCheck.Test.fail_reportf "raised %s" (Printexc.to_string e))

let test_witness_targeted_corruption () =
  let w =
    Witness.make
      ~workloads:[| [ Ops.propose Value.truth ]; [ Ops.propose Value.falsity ] |]
      ~faults:(Faults.crashes 1) sample_trace
  in
  let s = Witness.to_string w in
  List.iter
    (fun (what, s') ->
      match Witness.of_string s' with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%s accepted" what
      | exception e ->
        Alcotest.failf "%s raised %s" what (Printexc.to_string e))
    [
      ("empty input", "");
      ("missing header", "trace p0.s0\n");
      ("wrong version", "wfc-witness/9\ntrace p0.s0\n");
      ("garbage trace token", s ^ "trace p0.q9\n");
      ("malformed workload index", "wfc-witness/1\nworkload x |\n");
    ]

(* --- explore-level checkpoint / resume / interrupt ------------------------- *)

let test_explore_budget_checkpoint_resume () =
  let impl = cas3 () in
  let clean =
    Explore.run impl ~workloads:workloads3 ~options:Explore.naive ()
  in
  let path = temp_ck () in
  let rec go resume_from rounds =
    if rounds > 500 then Alcotest.fail "resume loop did not converge";
    let stats =
      (* the clean naive tree is ~270 nodes: a budget of 60 forces several
         checkpoint/resume segments *)
      Explore.run impl ~workloads:workloads3 ~options:Explore.naive ~budget:60
        ?resume_from
        ~checkpoint:(path, 3600.) ()
    in
    match completeness_of stats with
    | Explore.Exhaustive -> (stats, rounds)
    | Explore.Partial _ -> (
      match Checkpoint.load path with
      | Ok ck -> go (Some ck) (rounds + 1)
      | Error e -> Alcotest.failf "checkpoint load failed: %s" e)
  in
  let final, rounds = go None 0 in
  if Sys.file_exists path then Sys.remove path;
  Alcotest.(check bool) "took more than one segment" true (rounds >= 1);
  (* duplicate re-emissions at segment boundaries are allowed, lost work is
     not *)
  Alcotest.(check bool)
    (Fmt.str "no leaves lost (%d vs clean %d)" final.Explore.leaves
       clean.Explore.leaves)
    true
    (final.Explore.leaves >= clean.Explore.leaves);
  Alcotest.(check bool)
    (Fmt.str "duplicates bounded (%d vs clean %d)" final.Explore.leaves
       clean.Explore.leaves)
    true
    (final.Explore.leaves <= 3 * clean.Explore.leaves)

let test_explore_interrupt_flush_and_resume () =
  let impl = cas3 () in
  let path = temp_ck () in
  let flag = Atomic.make true in
  let stats =
    Explore.run impl ~workloads:workloads3 ~options:Explore.naive
      ~interrupt:flag ~checkpoint:(path, 3600.) ()
  in
  (match completeness_of stats with
  | Explore.Partial Explore.Interrupted -> ()
  | Explore.Exhaustive -> Alcotest.fail "expected Partial Interrupted, got exhaustive"
  | Explore.Partial r ->
    Alcotest.failf "expected Partial Interrupted, got %a"
      Explore.pp_partial_reason r);
  let ck =
    match Checkpoint.load path with
    | Ok ck -> ck
    | Error e -> Alcotest.failf "no final flush: %s" e
  in
  Alcotest.(check bool) "frontier saved" true (ck.Checkpoint.frontier <> []);
  Atomic.set flag false;
  let stats2 =
    Explore.run impl ~workloads:workloads3 ~options:Explore.naive
      ~interrupt:flag ~resume_from:ck ()
  in
  if Sys.file_exists path then Sys.remove path;
  match completeness_of stats2 with
  | Explore.Exhaustive -> ()
  | Explore.Partial _ -> Alcotest.fail "resume after interrupt did not finish"

(* --- supervised pool: crash and stall degradation -------------------------- *)

let test_worker_crash_degrades_not_poisons () =
  let impl = cas3 () in
  let clean =
    Explore.run impl ~workloads:workloads3 ~options:Explore.naive ()
  in
  let injected = Atomic.make false in
  (* exactly one worker dies at its very first node, before it can have
     emitted any leaf: the requeued subtree must be re-explored in full *)
  let chaos ~worker:_ ~nodes =
    if nodes = 1 && Atomic.compare_and_set injected false true then
      failwith "injected worker crash"
  in
  let stats =
    Explore.run impl ~workloads:workloads3
      ~options:{ Explore.naive with domains = 4 }
      ~par_threshold:0 ~chaos ()
  in
  Alcotest.(check bool) "chaos fired" true (Atomic.get injected);
  (match completeness_of stats with
  | Explore.Exhaustive -> ()
  | Explore.Partial _ -> Alcotest.fail "degraded run must still be exhaustive");
  Alcotest.(check int) "crash counted as degradation" 1 stats.Explore.degraded;
  Alcotest.(check int)
    "verdict-relevant coverage identical to the clean run" clean.Explore.leaves
    stats.Explore.leaves

let test_user_exception_still_propagates () =
  (* a leaf callback's exception is a user error, not a worker failure: it
     must abort the run and re-raise on the caller, never count as
     degradation *)
  let impl = cas3 () in
  let exception Probe in
  (match
     Explore.run impl ~workloads:workloads3
       ~options:{ Explore.naive with domains = 4 }
       ~par_threshold:0
       ~chaos:(fun ~worker:_ ~nodes:_ -> ())
       ~on_leaf:(fun _ -> raise Probe)
       ()
   with
  | _ -> Alcotest.fail "expected the callback's exception to propagate"
  | exception Probe -> ())

let test_stalled_worker_requeued () =
  let impl = cas3 () in
  let clean =
    Explore.run impl ~workloads:workloads3 ~options:Explore.naive ()
  in
  let stalled = Atomic.make false in
  let chaos ~worker:_ ~nodes =
    if nodes = 1 && Atomic.compare_and_set stalled false true then
      Unix.sleepf 0.4
  in
  let stats =
    Explore.run impl ~workloads:workloads3
      ~options:{ Explore.naive with domains = 4 }
      ~par_threshold:0 ~stall_timeout_s:0.05 ~chaos ()
  in
  (match completeness_of stats with
  | Explore.Exhaustive -> ()
  | Explore.Partial _ -> Alcotest.fail "stall must not cut the run");
  Alcotest.(check bool) "stall counted as degradation" true
    (stats.Explore.degraded >= 1);
  Alcotest.(check bool)
    (Fmt.str "no work lost (%d vs clean %d)" stats.Explore.leaves
       clean.Explore.leaves)
    true
    (stats.Explore.leaves >= clean.Explore.leaves)

(* --- memory watchdog ------------------------------------------------------- *)

let test_mem_watchdog_evicts_and_finishes () =
  let impl = cas3 () in
  (* a small exploration lives entirely in the minor heap, where
     [Gc.quick_stat] sees nothing — retain 2M words (~16 MiB) of ballast so
     the major heap genuinely exceeds the 1 MiB budget and the watchdog must
     trip on its first sample and shed dedup state *)
  let ballast = Array.init (1 lsl 21) (fun i -> i) in
  let deduped =
    Explore.run impl ~workloads:workloads3 ~options:Explore.fast ()
  in
  (* flat path: the exact fingerprint table migrates to the Bloom tier; the
     run finishes but its clean sweep is downgraded to Probabilistic *)
  let stats =
    Explore.run impl ~workloads:workloads3 ~options:Explore.fast
      ~mem_budget_mb:1 ()
  in
  (match completeness_of stats with
  | Explore.Partial Explore.Probabilistic -> ()
  | c ->
    Alcotest.failf "Bloom tier must report Probabilistic, got %a"
      Explore.pp_completeness c);
  Alcotest.(check bool) "evicted under pressure" true
    (stats.Explore.evictions >= 1);
  (* Bloom false positives can only prune more, never less — and on a state
     space this small (2^23-bit filter) there are effectively none *)
  Alcotest.(check int) "Bloom tier loses no coverage here"
    deduped.Explore.leaves stats.Explore.leaves;
  (* boxed path: tables are dropped and the run degrades to undeduped but
     stays exhaustive *)
  let boxed =
    Explore.run impl ~workloads:workloads3
      ~options:{ Explore.fast with flat = false } ~mem_budget_mb:1 ()
  in
  ignore (Sys.opaque_identity ballast.(0));
  (match completeness_of boxed with
  | Explore.Exhaustive -> ()
  | Explore.Partial _ -> Alcotest.fail "boxed eviction must not cut the run");
  Alcotest.(check bool) "boxed path evicted under pressure" true
    (boxed.Explore.evictions >= 1);
  (* undeduped fallback explores at least as much as the deduped engine *)
  Alcotest.(check bool) "fallback loses no coverage" true
    (boxed.Explore.leaves >= deduped.Explore.leaves)

(* --- Check-level: verdict parity across interruption ----------------------- *)

let reference_verdict impl =
  match Check.verify ~engine:Explore.fast impl with
  | Check.Verified r -> r
  | v -> Alcotest.failf "reference run not verified: %a" Check.pp_verdict v

let test_verify_budget_resume_parity () =
  let impl = cas3 () in
  let reference = reference_verdict impl in
  let path = temp_ck () in
  let rec go resume rounds =
    if rounds > 300 then Alcotest.fail "resume loop did not converge";
    match
      Check.verify ~engine:Explore.fast ~budget:500 ~checkpoint:(path, 3600.)
        ?resume impl
    with
    | Check.Unknown _ -> (
      match Checkpoint.load path with
      | Ok ck -> go (Some ck) (rounds + 1)
      | Error e -> Alcotest.failf "checkpoint load failed: %s" e)
    | v -> (v, rounds)
  in
  let verdict, rounds = go None 0 in
  Alcotest.(check bool) "was actually interrupted" true (rounds >= 1);
  Alcotest.(check bool) "checkpoint removed on definitive verdict" false
    (Sys.file_exists path);
  match verdict with
  | Check.Verified r ->
    Alcotest.(check int) "vector parity" reference.Check.vectors
      r.Check.vectors;
    Alcotest.(check int) "max_events parity" reference.Check.max_events
      r.Check.max_events
  | v -> Alcotest.failf "expected Verified after resume, got %a" Check.pp_verdict v

let test_verify_interrupt_resume_parity () =
  let impl = cas3 () in
  let reference = reference_verdict impl in
  let path = temp_ck () in
  let flag = Atomic.make true in
  (match
     Check.verify ~engine:Explore.fast ~checkpoint:(path, 3600.)
       ~interrupt:flag
       ~meta:[ ("protocol", "cas"); ("procs", "3") ]
       impl
   with
  | Check.Unknown { reason; _ } ->
    Alcotest.(check string) "reason" "interrupted" reason
  | v -> Alcotest.failf "expected Unknown, got %a" Check.pp_verdict v);
  let ck =
    match Checkpoint.load path with
    | Ok ck -> ck
    | Error e -> Alcotest.failf "no checkpoint after interrupt: %s" e
  in
  Alcotest.(check (option string))
    "caller meta carried through" (Some "cas")
    (Checkpoint.meta_find ck "protocol");
  Atomic.set flag false;
  (match
     Check.verify ~engine:Explore.fast ~checkpoint:(path, 3600.) ~resume:ck
       ~interrupt:flag impl
   with
  | Check.Verified r ->
    Alcotest.(check int) "vector parity" reference.Check.vectors
      r.Check.vectors
  | v -> Alcotest.failf "expected Verified after resume, got %a" Check.pp_verdict v);
  Alcotest.(check bool) "checkpoint removed" false (Sys.file_exists path)

let test_verify_falsified_unaffected_by_checkpointing () =
  (* a protocol with a real violation must still be falsified identically
     when checkpointing is armed *)
  let impl = Protocols.broken_register_only () in
  let path = temp_ck () in
  match Check.verify ~engine:Explore.fast ~checkpoint:(path, 3600.) impl with
  | Check.Falsified _ ->
    Alcotest.(check bool) "checkpoint removed" false (Sys.file_exists path)
  | v -> Alcotest.failf "expected Falsified, got %a" Check.pp_verdict v

let () =
  Alcotest.run "wfc_resilience"
    [
      ( "monotime",
        [ Alcotest.test_case "nondecreasing" `Quick test_monotime_nondecreasing ]
      );
      ( "checkpoint codec",
        [
          Alcotest.test_case "round-trip" `Quick test_checkpoint_roundtrip;
          Alcotest.test_case "digest rejects tampering" `Quick
            test_checkpoint_digest_rejects_tampering;
          Alcotest.test_case "parser total under mutation" `Quick
            test_checkpoint_of_string_total;
          Alcotest.test_case "legacy v1 format parses" `Quick
            test_checkpoint_v1_still_parses;
          Alcotest.test_case "problem mismatch detected" `Quick
            test_checkpoint_mismatch_detected;
          Alcotest.test_case "meta validation" `Quick
            test_checkpoint_meta_validation;
        ] );
      ( "witness codec",
        [
          QCheck_alcotest.to_alcotest prop_witness_roundtrip;
          QCheck_alcotest.to_alcotest prop_witness_of_string_total;
          Alcotest.test_case "targeted corruption" `Quick
            test_witness_targeted_corruption;
        ] );
      ( "checkpoint/resume",
        [
          Alcotest.test_case "budgeted resume loop" `Quick
            test_explore_budget_checkpoint_resume;
          Alcotest.test_case "interrupt flushes and resumes" `Quick
            test_explore_interrupt_flush_and_resume;
        ] );
      ( "supervised pool",
        [
          Alcotest.test_case "worker crash degrades" `Quick
            test_worker_crash_degrades_not_poisons;
          Alcotest.test_case "user exception propagates" `Quick
            test_user_exception_still_propagates;
          Alcotest.test_case "stalled worker requeued" `Slow
            test_stalled_worker_requeued;
        ] );
      ( "memory watchdog",
        [
          Alcotest.test_case "evicts and finishes" `Quick
            test_mem_watchdog_evicts_and_finishes;
        ] );
      ( "verify parity",
        [
          Alcotest.test_case "budget-cut resume" `Quick
            test_verify_budget_resume_parity;
          Alcotest.test_case "interrupt resume" `Quick
            test_verify_interrupt_resume_parity;
          Alcotest.test_case "falsified with checkpointing" `Quick
            test_verify_falsified_unaffected_by_checkpointing;
        ] );
    ]
