(* The serving layer (lib/serve): histogram bucket math as properties,
   tick-soundness invariants on real sharded-stamp histories, and the
   driver's spot-check loop — both accepting correct service and rejecting
   a wrong abstraction claim. *)

open Wfc_spec
open Wfc_zoo
module H = Wfc_serve.Histogram
module Tick = Wfc_multicore.Tick
module Runtime = Wfc_multicore.Runtime
module Cells = Wfc_multicore.Cells

(* --- histogram bucket math -------------------------------------------------

   The recording path never stores raw values, so everything reported rests
   on the bucket maps: [index_of] must be a monotone surjection onto
   [0, buckets), [value_of_index] its lower-bound inverse, and every bucket
   at most 1/32 of its lower bound wide (values below 32 are exact). *)

let nat =
  QCheck.make ~print:string_of_int
    QCheck.Gen.(
      frequency
        [
          (3, int_range 0 200);
          (3, int_range 0 100_000);
          (2, int_range 0 1_000_000_000);
          (1, map abs int);
        ])

let prop_bucket_roundtrip =
  QCheck.Test.make ~count:1000 ~name:"bucket round trip brackets the value"
    nat (fun v ->
      let i = H.index_of v in
      i >= 0 && i < H.buckets
      && H.value_of_index i <= v
      && (i + 1 >= H.buckets || v < H.value_of_index (i + 1))
      && H.index_of (H.value_of_index i) = i)

let prop_bucket_monotone =
  QCheck.Test.make ~count:1000 ~name:"bucket index is monotone"
    (QCheck.pair nat nat) (fun (a, b) ->
      let a, b = (min a b, max a b) in
      H.index_of a <= H.index_of b)

let prop_bucket_width =
  QCheck.Test.make ~count:1000 ~name:"bucket width is <= 1/32 of lower bound"
    nat (fun v ->
      let i = H.index_of v in
      QCheck.assume (i + 1 < H.buckets);
      let lo = H.value_of_index i and hi = H.value_of_index (i + 1) in
      if v < 32 then hi - lo = 1 else hi - lo <= max 1 (lo / 32))

let pos_list = QCheck.list_of_size QCheck.Gen.(int_range 1 400) nat
let quantile = QCheck.float_range 0.0 1.0

let prop_percentile_vs_exact =
  QCheck.Test.make ~count:500
    ~name:"percentile lands in the exact order statistic's bucket"
    (QCheck.pair pos_list quantile) (fun (vs, q) ->
      QCheck.assume (vs <> []);
      let t = H.make () in
      List.iter (H.record t) vs;
      let sorted = List.sort compare vs in
      let n = List.length vs in
      let rank =
        let r = int_of_float (ceil (q *. float_of_int n)) in
        if r < 1 then 1 else if r > n then n else r
      in
      let exact = List.nth sorted (rank - 1) in
      let p = H.percentile t q in
      p <= exact && H.index_of p = H.index_of exact)

let prop_percentile_monotone =
  QCheck.Test.make ~count:500 ~name:"percentile is monotone in q"
    (QCheck.triple pos_list quantile quantile) (fun (vs, q1, q2) ->
      QCheck.assume (vs <> []);
      let t = H.make () in
      List.iter (H.record t) vs;
      let q1, q2 = (min q1 q2, max q1 q2) in
      H.percentile t q1 <= H.percentile t q2
      && H.percentile t 0.0 = H.min_ns t
      (* percentiles report bucket lower bounds: p100 is the max's bucket,
         not the max itself *)
      && H.index_of (H.percentile t 1.0) = H.index_of (H.max_ns t))

let prop_merge_is_concat =
  QCheck.Test.make ~count:500 ~name:"merge equals recording the concatenation"
    (QCheck.pair pos_list pos_list) (fun (xs, ys) ->
      let a = H.make () and b = H.make () and c = H.make () in
      List.iter (H.record a) xs;
      List.iter (H.record b) ys;
      List.iter (H.record c) (xs @ ys);
      let m = H.merged [ a; b ] in
      H.count m = H.count c
      && H.min_ns m = H.min_ns c
      && H.max_ns m = H.max_ns c
      && List.for_all
           (fun q -> H.percentile m q = H.percentile c q)
           [ 0.0; 0.5; 0.9; 0.99; 0.999; 1.0 ])

(* --- tick soundness on real histories --------------------------------------

   The sharded epoch scheme may coarsen stamps (ties) but must never invert
   them: a history produced by Runtime.run under sharded ticks has to pass
   the same structural sanity Spotcheck enforces on serving windows, and
   still be accepted by the linearizability checker. *)

let chain_impl procs =
  Wfc_registers.Multi_writer.atomic_mrmw ~writers:procs ~extra_readers:0
    ~init:(Value.int 0) ()

let chain_workloads procs per =
  Array.init procs (fun p ->
      List.init per (fun i ->
          if (i + p) mod 2 = 0 then Ops.write (Value.int ((100 * p) + i))
          else Ops.read))

let prop_sharded_ticks_sane =
  QCheck.Test.make ~count:12 ~name:"sharded-tick histories pass tick sanity"
    (QCheck.pair (QCheck.int_range 1 8) (QCheck.int_bound 1000))
    (fun (epoch_every, seed) ->
      let procs = 3 in
      let o =
        Runtime.run ~seed ~backend:Cells.Atomic_cas
          ~tick:(Tick.sharded ~epoch_every ()) (chain_impl procs)
          ~workloads:(chain_workloads procs 12) ()
      in
      match Wfc_serve.Spotcheck.tick_sane o.Runtime.ops with
      | Ok () -> true
      | Error m -> QCheck.Test.fail_reportf "tick sanity: %s" m)

let test_sharded_history_linearizable () =
  let procs = 3 in
  let impl = chain_impl procs in
  let o =
    Runtime.run ~seed:7 ~backend:Cells.Atomic_cas
      ~tick:(Tick.sharded ~epoch_every:4 ()) impl
      ~workloads:(chain_workloads procs 10) ()
  in
  match Wfc_serve.Spotcheck.check_window impl o.Runtime.ops with
  | Ok () -> ()
  | Error m -> Alcotest.failf "sharded history rejected: %s" m

let test_tick_sane_rejects_inversion () =
  (* two ops of one process whose stamps run backwards — the failure mode
     an unsound (per-domain block) tick scheme would produce *)
  let op i st en =
    {
      Wfc_sim.Exec.proc = 0;
      op_index = i;
      inv = Ops.read;
      resp = Value.int 0;
      start_step = st;
      end_step = en;
      steps = 1;
    }
  in
  (match Wfc_serve.Spotcheck.tick_sane [ op 0 5 6; op 1 2 3 ] with
  | Ok () -> Alcotest.fail "inverted program-order stamps accepted"
  | Error _ -> ());
  match Wfc_serve.Spotcheck.tick_sane [ op 0 4 2 ] with
  | Ok () -> Alcotest.fail "end < start accepted"
  | Error _ -> ()

(* --- the serving driver ----------------------------------------------------- *)

let test_driver_serves_ok () =
  let w = Wfc_serve.Workload.register_chain ~domains:2 ~ops_per_proc:6 in
  List.iter
    (fun backend ->
      let o =
        Wfc_serve.Driver.run ~backend ~sessions:5 ~check_every:2
          ~check:(w.Wfc_serve.Workload.check_spec, w.Wfc_serve.Workload.check_init)
          w.Wfc_serve.Workload.impl ~workloads:w.Wfc_serve.Workload.equal ()
      in
      Alcotest.(check (option string)) "no failure" None o.Wfc_serve.Driver.failure;
      Alcotest.(check int) "windows checked" 3 o.Wfc_serve.Driver.windows_checked;
      Alcotest.(check int) "windows ok" 3 o.Wfc_serve.Driver.windows_ok;
      Alcotest.(check int) "every op served" (5 * 2 * 6)
        o.Wfc_serve.Driver.total_ops;
      Alcotest.(check int) "latency recorded per op" (5 * 2 * 6)
        (H.count o.Wfc_serve.Driver.hist))
    [ Cells.Mutex_cells; Cells.Atomic_cas ]

let test_driver_one_use_sessions () =
  (* every session re-spends the full one-use budget: without the barrier
     reset, session 2's first write would raise on a spent bit *)
  let w = Wfc_serve.Workload.one_use_array ~domains:2 in
  let o =
    Wfc_serve.Driver.run ~backend:Cells.Atomic_cas ~sessions:4 ~check_every:1
      ~check:(w.Wfc_serve.Workload.check_spec, w.Wfc_serve.Workload.check_init)
      ?port_of:w.Wfc_serve.Workload.port_of w.Wfc_serve.Workload.impl
      ~workloads:w.Wfc_serve.Workload.equal ()
  in
  Alcotest.(check (option string)) "no failure" None o.Wfc_serve.Driver.failure;
  Alcotest.(check int) "all windows ok" o.Wfc_serve.Driver.windows_checked
    o.Wfc_serve.Driver.windows_ok

let test_driver_catches_wrong_abstraction () =
  (* serve a perfectly good register but claim it abstracts to 999: a
     read-only window can only ever observe the real initial value, so the
     very first spot-check must refute the claim — this is the evidence
     that the sampling loop actually checks something *)
  let w = Wfc_serve.Workload.register_chain ~domains:2 ~ops_per_proc:4 in
  let o =
    Wfc_serve.Driver.run ~backend:Cells.Atomic_cas ~sessions:2 ~check_every:1
      ~check:(w.Wfc_serve.Workload.check_spec, Value.int 999)
      w.Wfc_serve.Workload.impl
      ~workloads:[| [ Ops.read; Ops.read ]; [ Ops.read; Ops.read ] |] ()
  in
  match o.Wfc_serve.Driver.failure with
  | Some _ -> ()
  | None -> Alcotest.fail "wrong abstract initial state served as OK"

let qsuite = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "wfc_serve"
    [
      ( "histogram buckets",
        qsuite
          [
            prop_bucket_roundtrip;
            prop_bucket_monotone;
            prop_bucket_width;
            prop_percentile_vs_exact;
            prop_percentile_monotone;
            prop_merge_is_concat;
          ] );
      ( "tick soundness",
        qsuite [ prop_sharded_ticks_sane ]
        @ [
            Alcotest.test_case "sharded history linearizable" `Quick
              test_sharded_history_linearizable;
            Alcotest.test_case "tick sanity rejects inversions" `Quick
              test_tick_sane_rejects_inversion;
          ] );
      ( "driver",
        [
          Alcotest.test_case "serves and spot-checks OK" `Quick
            test_driver_serves_ok;
          Alcotest.test_case "one-use budget per session" `Quick
            test_driver_one_use_sessions;
          Alcotest.test_case "catches a wrong abstraction claim" `Quick
            test_driver_catches_wrong_abstraction;
        ] );
    ]
