(* Tests for the program monad, implementations, vertical composition, and
   the execution engine (exhaustive exploration + guided runs). *)

open Wfc_spec
open Wfc_zoo
open Wfc_program

let value = Alcotest.testable Value.pp Value.equal

(* --- Program monad ------------------------------------------------------- *)

let test_program_bind () =
  let open Program.Syntax in
  let p =
    let* a = Program.invoke ~obj:0 Ops.read in
    let* b = Program.invoke ~obj:1 Ops.read in
    Program.return (Value.pair a b)
  in
  (* walk the tree by hand with a canned oracle *)
  let rec feed p answers =
    match (p, answers) with
    | Program.Return v, [] -> v
    | Program.Invoke { obj; inv; k; _ }, a :: rest ->
      Alcotest.check value "reads" Ops.read inv;
      Alcotest.(check bool) "obj in range" true (obj = 0 || obj = 1);
      feed (k a) rest
    | _ -> Alcotest.fail "shape mismatch"
  in
  let v = feed p [ Value.int 1; Value.int 2 ] in
  Alcotest.check value "pair result" (Value.pair (Value.int 1) (Value.int 2)) v

let test_program_rename () =
  let p = Program.invoke ~obj:3 Ops.read in
  match Program.rename_objects (fun o -> o + 10) p with
  | Program.Invoke { obj; _ } -> Alcotest.(check int) "renamed" 13 obj
  | Program.Return _ -> Alcotest.fail "expected invoke"

let test_program_repeat () =
  let p = Program.repeat 4 (fun _ -> Program.map ignore (Program.invoke ~obj:0 Ops.read)) in
  Alcotest.(check int) "4 invocations" 4
    (Program.length_along (fun _ -> Ops.ok) p)

(* --- helper implementations ---------------------------------------------- *)

(* Local-only implementation of fetch-and-add (correct only for one process;
   used to test local-state threading). *)
let local_faa ~procs =
  Implementation.make
    ~target:(Rmw.fetch_add_mod ~ports:procs ~modulus:4)
    ~procs ~objects:[]
    ~local_init:(fun _ -> Value.int 0)
    ~program:(fun ~proc:_ ~inv local ->
      match inv with
      | Value.Pair (Value.Sym "fetch-add", Value.Int d) ->
        let old = Value.as_int local in
        Program.return (Value.int old, Value.int ((old + d) mod 4))
      | Value.Sym "read" -> Program.return (local, local)
      | _ -> assert false)
    ()

(* Atomic bit implemented by writing two base bits and reading the second:
   linearizable (reads are single accesses to bit 1, writes hit bit 1 last —
   wait, writes hit bit 0 then bit 1, so bit 1 is the linearization point
   for both reads and writes). *)
let bit_from_two_bits ~procs =
  let bit = Register.bit ~ports:procs in
  Implementation.make ~target:bit ~procs
    ~objects:[ (bit, Value.falsity); (bit, Value.falsity) ]
    ~program:(fun ~proc:_ ~inv local ->
      let open Program.Syntax in
      match inv with
      | Value.Sym "read" ->
        let+ v = Program.invoke ~obj:1 Ops.read in
        (v, local)
      | Value.Pair (Value.Sym "write", v) ->
        let* _ = Program.invoke ~obj:0 (Ops.write v) in
        let+ _ = Program.invoke ~obj:1 (Ops.write v) in
        (Ops.ok, local)
      | _ -> assert false)
    ()

(* --- Implementation basics ------------------------------------------------ *)

let test_identity_sequential () =
  let impl = Implementation.identity (Rmw.test_and_set ~ports:2) ~procs:2 in
  let resps, _ =
    Wfc_sim.Exec.sequential_oracle impl [ Ops.test_and_set; Ops.test_and_set ]
  in
  Alcotest.(check (list value)) "tas twice" [ Value.falsity; Value.truth ] resps

let test_identity_validates () =
  let impl = Implementation.identity (Register.bit ~ports:3) ~procs:3 in
  match Implementation.validate impl with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_validate_port_clash () =
  let bit = Register.bit ~ports:2 in
  let impl =
    Implementation.make ~target:bit ~procs:2
      ~objects:[ (bit, Value.falsity) ]
      ~port_map:(fun ~proc:_ ~obj:_ -> 0)
      ~program:(fun ~proc:_ ~inv local ->
        Program.map (fun r -> (r, local)) (Program.invoke ~obj:0 inv))
      ()
  in
  Alcotest.(check bool) "clash detected" true
    (Result.is_error (Implementation.validate impl))

let test_local_state_threading () =
  let impl = local_faa ~procs:1 in
  let resps, _ =
    Wfc_sim.Exec.sequential_oracle impl
      [ Ops.fetch_add 1; Ops.fetch_add 1; Ops.fetch_add 2; Ops.read ]
  in
  Alcotest.(check (list value))
    "locals persist across ops"
    [ Value.int 0; Value.int 1; Value.int 2; Value.int 0 ]
    resps

let test_zero_access_ops () =
  let impl = local_faa ~procs:1 in
  let _, leaf = Wfc_sim.Exec.sequential_oracle impl [ Ops.fetch_add 1 ] in
  match leaf.Wfc_sim.Exec.ops with
  | [ o ] ->
    Alcotest.(check int) "zero steps" 0 o.Wfc_sim.Exec.steps;
    Alcotest.(check int) "start=end" o.Wfc_sim.Exec.start_step
      o.Wfc_sim.Exec.end_step
  | _ -> Alcotest.fail "expected one op"

(* --- exploration ------------------------------------------------------------ *)

let test_explore_tas_identity () =
  let impl = Implementation.identity (Rmw.test_and_set ~ports:2) ~procs:2 in
  let winners = ref [] in
  let stats =
    Wfc_sim.Exec.explore impl
      ~workloads:[| [ Ops.test_and_set ]; [ Ops.test_and_set ] |]
      ~on_leaf:(fun leaf ->
        let w =
          List.filter
            (fun (o : Wfc_sim.Exec.op) -> Value.equal o.resp Value.falsity)
            leaf.ops
        in
        winners := List.length w :: !winners)
      ()
  in
  Alcotest.(check int) "two interleavings" 2 stats.Wfc_sim.Exec.leaves;
  Alcotest.(check int) "no overflow" 0 stats.Wfc_sim.Exec.overflows;
  Alcotest.(check int) "path length 2" 2 stats.Wfc_sim.Exec.max_events;
  Alcotest.(check (list int)) "exactly one winner per leaf" [ 1; 1 ] !winners

let test_explore_nondet_branching () =
  (* one process reads a coin twice: 2 × 2 = 4 leaves *)
  let impl = Implementation.identity (Nondet.coin ~ports:1) ~procs:1 in
  let stats =
    Wfc_sim.Exec.explore impl ~workloads:[| [ Ops.read; Ops.read ] |] ()
  in
  Alcotest.(check int) "nondet leaves" 4 stats.Wfc_sim.Exec.leaves

let test_explore_interleaving_count () =
  (* two procs, each: write then read on bit_from_two_bits. Each op is
     1 (read) or 2 (write) accesses; per proc 3 events; interleavings of
     3+3 events = C(6,3) = 20 schedules, all deterministic. *)
  let impl = bit_from_two_bits ~procs:2 in
  let wl = [ Ops.write Value.truth; Ops.read ] in
  let stats = Wfc_sim.Exec.explore impl ~workloads:[| wl; wl |] () in
  Alcotest.(check int) "C(6,3) leaves" 20 stats.Wfc_sim.Exec.leaves;
  Alcotest.(check int) "max op steps" 2 stats.Wfc_sim.Exec.max_op_steps

let test_explore_access_counts () =
  let impl = bit_from_two_bits ~procs:2 in
  let wl = [ Ops.write Value.truth; Ops.read ] in
  let stats = Wfc_sim.Exec.explore impl ~workloads:[| wl; wl |] () in
  (* bit 0: 1 write-access per proc = 2; bit 1: write+read per proc = 4 *)
  Alcotest.(check int) "bit0 accesses" 2 stats.Wfc_sim.Exec.max_accesses.(0);
  Alcotest.(check int) "bit1 accesses" 4 stats.Wfc_sim.Exec.max_accesses.(1)

let test_explore_fuel_overflow () =
  (* a deliberately non-wait-free program: spin until another process writes,
     but no one ever writes — fuel must catch it. *)
  let bit = Register.bit ~ports:1 in
  let impl =
    Implementation.make ~target:(Register.bit ~ports:1) ~procs:1
      ~objects:[ (bit, Value.falsity) ]
      ~program:(fun ~proc:_ ~inv:_ _local ->
        let open Program.Syntax in
        let rec spin () =
          let* v = Program.invoke ~obj:0 Ops.read in
          if Value.as_bool v then Program.return (Ops.ok, Value.unit)
          else spin ()
        in
        spin ())
      ()
  in
  let stats =
    Wfc_sim.Exec.explore impl ~workloads:[| [ Ops.read ] |] ~fuel:50 ()
  in
  Alcotest.(check int) "overflow detected" 1 stats.Wfc_sim.Exec.overflows;
  Alcotest.(check int) "no leaf" 0 stats.Wfc_sim.Exec.leaves

(* --- fold_tree ----------------------------------------------------------------- *)

let test_fold_tree_counts_leaves () =
  (* folding with leaf ↦ 1 / node ↦ sum must agree with explore's count *)
  let impl = Implementation.identity (Rmw.test_and_set ~ports:2) ~procs:2 in
  let workloads = [| [ Ops.test_and_set ]; [ Ops.test_and_set ] |] in
  let via_fold =
    Wfc_sim.Exec.fold_tree impl ~workloads
      ~leaf:(fun _ -> 1)
      ~node:(fun _ children -> List.fold_left ( + ) 0 children)
      ()
  in
  let stats = Wfc_sim.Exec.explore impl ~workloads () in
  Alcotest.(check int) "fold = explore" stats.Wfc_sim.Exec.leaves via_fold

let test_fold_tree_next_accesses () =
  (* at the root, both processes' pending accesses are visible and point at
     the single TAS object *)
  let impl = Implementation.identity (Rmw.test_and_set ~ports:2) ~procs:2 in
  let seen_root = ref None in
  ignore
    (Wfc_sim.Exec.fold_tree impl
       ~workloads:[| [ Ops.test_and_set ]; [ Ops.test_and_set ] |]
       ~leaf:(fun _ -> 0)
       ~node:(fun view children ->
         if view.Wfc_sim.Exec.depth = 0 then
           seen_root := Some view.Wfc_sim.Exec.next_accesses;
         List.fold_left max 0 children + 1)
       ());
  match !seen_root with
  | Some [ (0, 0, _); (1, 0, _) ] -> ()
  | Some other ->
    Alcotest.failf "unexpected root accesses: %d entries" (List.length other)
  | None -> Alcotest.fail "root never visited"

let test_fold_tree_fuel () =
  let bit = Register.bit ~ports:1 in
  let impl =
    Implementation.make ~target:bit ~procs:1
      ~objects:[ (bit, Value.falsity) ]
      ~program:(fun ~proc:_ ~inv:_ _local ->
        let open Program.Syntax in
        let rec spin () =
          let* _ = Program.invoke ~obj:0 Ops.read in
          spin ()
        in
        spin ())
      ()
  in
  Alcotest.(check bool) "fuel raises" true
    (match
       Wfc_sim.Exec.fold_tree impl
         ~workloads:[| [ Ops.read ] |]
         ~fuel:30
         ~leaf:(fun _ -> ())
         ~node:(fun _ _ -> ())
         ()
     with
    | () -> false
    | exception Failure _ -> true)

(* --- crash exploration ------------------------------------------------------------ *)

let test_crash_leaves_have_partial_ops () =
  (* with one crash allowed, some leaf completes only one of the two ops *)
  let impl = Implementation.identity (Rmw.test_and_set ~ports:2) ~procs:2 in
  let partial = ref false and complete = ref false in
  let stats =
    Wfc_sim.Exec.explore impl
      ~workloads:[| [ Ops.test_and_set ]; [ Ops.test_and_set ] |]
      ~max_crashes:1
      ~on_leaf:(fun leaf ->
        match List.length leaf.Wfc_sim.Exec.ops with
        | 1 -> partial := true
        | 2 -> complete := true
        | _ -> ())
      ()
  in
  Alcotest.(check bool) "partial leaves exist" true !partial;
  Alcotest.(check bool) "complete leaves exist" true !complete;
  Alcotest.(check bool) "more leaves than crash-free" true
    (stats.Wfc_sim.Exec.leaves > 2)

let test_crash_budget_respected () =
  (* with as many crashes as processes, the all-crashed empty leaf exists *)
  let impl = Implementation.identity (Rmw.test_and_set ~ports:2) ~procs:2 in
  let empty_leaf = ref false in
  ignore
    (Wfc_sim.Exec.explore impl
       ~workloads:[| [ Ops.test_and_set ]; [ Ops.test_and_set ] |]
       ~max_crashes:2
       ~on_leaf:(fun leaf ->
         if leaf.Wfc_sim.Exec.ops = [] then empty_leaf := true)
       ());
  Alcotest.(check bool) "everyone can crash" true !empty_leaf

let test_crash_mid_operation () =
  (* bit_from_two_bits: crashing the writer between its two base writes
     leaves the bits inconsistent — visible in some leaf's final state *)
  let impl = bit_from_two_bits ~procs:2 in
  let torn = ref false in
  ignore
    (Wfc_sim.Exec.explore impl
       ~workloads:[| [ Ops.write Value.truth ]; [ Ops.read ] |]
       ~max_crashes:1
       ~on_leaf:(fun leaf ->
         let b0 = leaf.Wfc_sim.Exec.objects.(0)
         and b1 = leaf.Wfc_sim.Exec.objects.(1) in
         if Value.equal b0 Value.truth && Value.equal b1 Value.falsity then
           torn := true)
       ());
  Alcotest.(check bool) "mid-write crash leaves torn state" true !torn

(* --- substitution ------------------------------------------------------------ *)

let test_substitute_identity_chain () =
  (* identity(bit) with its base object replaced by bit_from_two_bits:
     behaves like a bit, has 2 base objects. *)
  let outer = Implementation.identity (Register.bit ~ports:2) ~procs:2 in
  let composed =
    Implementation.substitute ~obj:0 ~replacement:(bit_from_two_bits ~procs:2) outer
  in
  Alcotest.(check int) "two base objects" 2
    (Implementation.base_object_count composed);
  let resps, _ =
    Wfc_sim.Exec.sequential_oracle composed
      [ Ops.read; Ops.write Value.truth; Ops.read ]
  in
  Alcotest.(check (list value))
    "register behaviour preserved"
    [ Value.falsity; Ops.ok; Value.truth ]
    resps

let test_substitute_spec_mismatch () =
  let outer = Implementation.identity (Rmw.test_and_set ~ports:2) ~procs:2 in
  Alcotest.(check bool) "wrong target rejected" true
    (match
       Implementation.substitute ~obj:0
         ~replacement:(bit_from_two_bits ~procs:2) outer
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_substitute_where () =
  let _bit = Register.bit ~ports:2 in
  (* an implementation with two bit objects; replace all bits *)
  let impl = bit_from_two_bits ~procs:2 in
  let composed =
    Implementation.substitute_where impl
      ~pred:(fun spec -> String.equal spec.Type_spec.name "atomic-bit")
      ~replace:(fun _ (_, init) ->
        let sub = bit_from_two_bits ~procs:2 in
        if Value.equal init Value.falsity then sub
        else Alcotest.fail "unexpected init")
  in
  Alcotest.(check int) "4 base objects after fan-out" 4
    (Implementation.base_object_count composed);
  Alcotest.(check int) "no direct bits left... (they are the sub's bits)" 4
    (Implementation.count_objects_where composed ~pred:(fun s ->
         String.equal s.Type_spec.name "atomic-bit"));
  let resps, _ =
    Wfc_sim.Exec.sequential_oracle composed
      [ Ops.read; Ops.write Value.truth; Ops.read; Ops.write Value.falsity; Ops.read ]
  in
  Alcotest.(check (list value))
    "still a register"
    [ Value.falsity; Ops.ok; Value.truth; Ops.ok; Value.falsity ]
    resps

let test_substitute_local_impl () =
  (* replacing an object with a 0-object (purely local) implementation *)
  let outer = Implementation.identity (Rmw.fetch_add_mod ~ports:1 ~modulus:4) ~procs:1 in
  let composed =
    Implementation.substitute ~obj:0 ~replacement:(local_faa ~procs:1) outer
  in
  let resps, _ =
    Wfc_sim.Exec.sequential_oracle composed [ Ops.fetch_add 1; Ops.fetch_add 1 ]
  in
  Alcotest.(check (list value)) "still counts" [ Value.int 0; Value.int 1 ] resps;
  Alcotest.(check int) "slot holds placeholder" 0
    (Implementation.count_objects_where composed ~pred:(fun s ->
         String.equal s.Type_spec.name "fetch-add-mod4"))

(* --- guided runs -------------------------------------------------------------- *)

let test_run_round_robin () =
  let impl = bit_from_two_bits ~procs:2 in
  let sched = Wfc_sim.Schedulers.round_robin in
  let leaf =
    Wfc_sim.Exec.run impl
      ~workloads:[| [ Ops.write Value.truth ]; [ Ops.read; Ops.read ] |]
      ~pick_proc:sched.Wfc_sim.Schedulers.pick_proc
      ~pick_alt:sched.Wfc_sim.Schedulers.pick_alt ()
  in
  Alcotest.(check int) "3 ops completed" 3 (List.length leaf.Wfc_sim.Exec.ops)

let test_run_random_schedulers () =
  let impl = bit_from_two_bits ~procs:3 in
  let rng = Random.State.make [| 7 |] in
  let scheds =
    [
      (Wfc_sim.Schedulers.random rng, 3);
      (Wfc_sim.Schedulers.handicap rng ~slow:[ 0 ] ~bias:4, 3);
      (* a dead process never finishes: the run stalls gracefully and
         returns the survivors' completed ops instead of spinning *)
      (Wfc_sim.Schedulers.crash rng ~dead:[ 2 ], 2);
    ]
  in
  List.iter
    (fun ((s : Wfc_sim.Schedulers.t), expected) ->
      let leaf =
        Wfc_sim.Exec.run impl
          ~workloads:
            [| [ Ops.write Value.truth ]; [ Ops.read ]; [ Ops.write Value.falsity ] |]
          ~pick_proc:s.pick_proc ~pick_alt:s.pick_alt ()
      in
      Alcotest.(check int) "all live ops complete" expected
        (List.length leaf.Wfc_sim.Exec.ops))
    scheds

let () =
  Alcotest.run "wfc_sim"
    [
      ( "program",
        [
          Alcotest.test_case "bind/invoke" `Quick test_program_bind;
          Alcotest.test_case "rename objects" `Quick test_program_rename;
          Alcotest.test_case "repeat" `Quick test_program_repeat;
        ] );
      ( "implementation",
        [
          Alcotest.test_case "identity sequential" `Quick test_identity_sequential;
          Alcotest.test_case "identity validates" `Quick test_identity_validates;
          Alcotest.test_case "port clash" `Quick test_validate_port_clash;
          Alcotest.test_case "local threading" `Quick test_local_state_threading;
          Alcotest.test_case "zero-access ops" `Quick test_zero_access_ops;
        ] );
      ( "explore",
        [
          Alcotest.test_case "tas identity" `Quick test_explore_tas_identity;
          Alcotest.test_case "nondet branching" `Quick test_explore_nondet_branching;
          Alcotest.test_case "interleaving count" `Quick
            test_explore_interleaving_count;
          Alcotest.test_case "access counts" `Quick test_explore_access_counts;
          Alcotest.test_case "fuel catches spin" `Quick test_explore_fuel_overflow;
        ] );
      ( "fold_tree",
        [
          Alcotest.test_case "counts leaves" `Quick test_fold_tree_counts_leaves;
          Alcotest.test_case "next accesses at root" `Quick
            test_fold_tree_next_accesses;
          Alcotest.test_case "fuel raises" `Quick test_fold_tree_fuel;
        ] );
      ( "crash exploration",
        [
          Alcotest.test_case "partial leaves" `Quick
            test_crash_leaves_have_partial_ops;
          Alcotest.test_case "full crash budget" `Quick test_crash_budget_respected;
          Alcotest.test_case "mid-operation torn state" `Quick
            test_crash_mid_operation;
        ] );
      ( "substitute",
        [
          Alcotest.test_case "identity chain" `Quick test_substitute_identity_chain;
          Alcotest.test_case "spec mismatch" `Quick test_substitute_spec_mismatch;
          Alcotest.test_case "substitute_where" `Quick test_substitute_where;
          Alcotest.test_case "local replacement" `Quick test_substitute_local_impl;
        ] );
      ( "guided runs",
        [
          Alcotest.test_case "round robin" `Quick test_run_round_robin;
          Alcotest.test_case "random & adversarial" `Quick
            test_run_random_schedulers;
        ] );
    ]
