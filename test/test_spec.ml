(* Unit and property tests for wfc_spec: values, type specifications,
   sequential histories. *)

open Wfc_spec

let value = Alcotest.testable Value.pp Value.equal

(* --- Value ------------------------------------------------------------ *)

let test_value_order () =
  let vs =
    [
      Value.unit;
      Value.falsity;
      Value.truth;
      Value.int (-3);
      Value.int 7;
      Value.sym "a";
      Value.sym "b";
      Value.pair (Value.int 1) (Value.sym "x");
      Value.list [ Value.int 1; Value.int 2 ];
    ]
  in
  List.iter
    (fun v ->
      Alcotest.(check int) "reflexive" 0 (Value.compare v v);
      Alcotest.(check bool) "equal self" true (Value.equal v v))
    vs;
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          if i <> j then
            Alcotest.(check bool)
              (Fmt.str "%a <> %a" Value.pp a Value.pp b)
              false (Value.equal a b))
        vs)
    vs

let test_value_antisym () =
  let a = Value.pair (Value.int 1) (Value.int 2)
  and b = Value.pair (Value.int 1) (Value.int 3) in
  Alcotest.(check bool) "a<b xor b<a" true
    (Value.compare a b * Value.compare b a < 0)

let test_value_destructors () =
  Alcotest.(check bool) "as_bool" true (Value.as_bool Value.truth);
  Alcotest.(check int) "as_int" 42 (Value.as_int (Value.int 42));
  Alcotest.(check string) "as_sym" "ok" (Value.as_sym (Value.sym "ok"));
  let a, b = Value.as_pair (Value.pair Value.truth Value.falsity) in
  Alcotest.check value "fst" Value.truth a;
  Alcotest.check value "snd" Value.falsity b;
  Alcotest.check_raises "as_int of sym"
    (Value.Type_error "expected int, got ok") (fun () ->
      ignore (Value.as_int (Value.sym "ok")))

let value_gen =
  let open QCheck.Gen in
  sized
  @@ fix (fun self n ->
         if n = 0 then
           oneof
             [
               return Value.Unit;
               map (fun b -> Value.Bool b) bool;
               map (fun i -> Value.Int i) small_signed_int;
               map (fun s -> Value.Sym s) (string_size ~gen:(char_range 'a' 'z') (return 3));
             ]
         else
           frequency
             [
               (3, self 0);
               (1, map2 (fun a b -> Value.Pair (a, b)) (self (n / 2)) (self (n / 2)));
               (1, map (fun xs -> Value.List xs) (list_size (int_bound 3) (self (n / 3))));
             ])

let value_arb = QCheck.make ~print:Value.to_string value_gen

let prop_compare_total =
  QCheck.Test.make ~name:"Value.compare total order"
    (QCheck.pair value_arb value_arb) (fun (a, b) ->
      let c1 = Value.compare a b and c2 = Value.compare b a in
      (c1 = 0) = (c2 = 0) && (c1 > 0) = (c2 < 0))

let prop_equal_hash =
  QCheck.Test.make ~name:"equal values hash equally"
    (QCheck.pair value_arb value_arb) (fun (a, b) ->
      (not (Value.equal a b)) || Value.hash a = Value.hash b)

let prop_compare_transitive =
  QCheck.Test.make ~name:"Value.compare transitive"
    (QCheck.triple value_arb value_arb value_arb) (fun (a, b, c) ->
      let sorted = List.sort Value.compare [ a; b; c ] in
      (* sorting must be stable under re-sorting: a weak but useful
         consequence of transitivity *)
      List.equal Value.equal sorted (List.sort Value.compare sorted))

(* --- Value.Intern ------------------------------------------------------- *)

module I = Value.Intern

(* one table shared across all qcheck iterations: sharing must keep holding
   as the table grows *)
let intern_st = I.create ()

let prop_intern_roundtrip =
  QCheck.Test.make ~name:"intern preserves value, hash and printing" value_arb
    (fun v ->
      let c = I.intern intern_st v in
      Value.equal (I.value c) v
      && I.hash c = Value.hash v
      && String.equal (Value.to_string (I.value c)) (Value.to_string v))

let prop_intern_sharing =
  QCheck.Test.make ~name:"intern is maximal sharing (equal iff same cell)"
    (QCheck.pair value_arb value_arb) (fun (a, b) ->
      let ca = I.intern intern_st a and cb = I.intern intern_st b in
      Value.equal a b = I.equal ca cb
      && I.equal ca cb = (I.compare_id ca cb = 0))

let prop_intern_constructors =
  QCheck.Test.make ~name:"smart constructors agree with intern"
    (QCheck.pair value_arb value_arb) (fun (a, b) ->
      let ca = I.intern intern_st a and cb = I.intern intern_st b in
      I.equal
        (I.pair intern_st ca cb)
        (I.intern intern_st (Value.Pair (a, b)))
      && I.equal
           (I.list intern_st [ ca; cb ])
           (I.intern intern_st (Value.List [ a; b ])))

let test_hash_sibling_reorder () =
  (* the pre-compaction [ha * 65599 + hb] chain was commutative across the
     elements of a right-nested pair chain — the shape dedup fingerprints
     have; the current mixer must separate reordered siblings *)
  let a = Value.int 1 and b = Value.int 2 and t = Value.sym "t" in
  let chain x y = Value.pair x (Value.pair y t) in
  Alcotest.(check bool) "pair chains with swapped heads differ" false
    (Value.hash (chain a b) = Value.hash (chain b a));
  Alcotest.(check bool) "lists with swapped heads differ" false
    (Value.hash (Value.list [ a; b; t ]) = Value.hash (Value.list [ b; a; t ]))

(* --- Type_spec --------------------------------------------------------- *)

let toggle =
  Type_spec.deterministic_oblivious ~name:"toggle" ~ports:2
    ~initial:Value.falsity
    ~states:[ Value.falsity; Value.truth ]
    ~responses:[ Value.falsity; Value.truth ]
    ~invocations:[ Value.sym "flip" ]
    (fun q _ -> (Value.bool (not (Value.as_bool q)), q))

let test_step_deterministic () =
  let q', r =
    Type_spec.step_deterministic toggle Value.falsity ~port:0
      ~inv:(Value.sym "flip")
  in
  Alcotest.check value "new state" Value.truth q';
  Alcotest.check value "response is old state" Value.falsity r

let test_step_bad_port () =
  Alcotest.(check bool) "out-of-range port raises" true
    (match
       Type_spec.step_deterministic toggle Value.falsity ~port:5
         ~inv:(Value.sym "flip")
     with
    | _ -> false
    | exception Type_spec.Bad_step _ -> true)

let test_is_deterministic () =
  Alcotest.(check bool) "toggle det" true (Type_spec.is_deterministic toggle);
  let nd =
    Type_spec.nondeterministic_oblivious ~name:"nd" ~ports:1
      ~initial:Value.unit ~states:[ Value.unit ]
      ~invocations:[ Value.sym "go" ]
      (fun q _ -> [ (q, Value.falsity); (q, Value.truth) ])
  in
  Alcotest.(check bool) "nd not det" false (Type_spec.is_deterministic nd)

let test_reachable () =
  let counter =
    Type_spec.deterministic_oblivious ~name:"ctr" ~ports:1
      ~initial:(Value.int 0)
      ~states:(List.init 4 Value.int)
      ~invocations:[ Value.sym "inc" ]
      (fun q _ -> (Value.int ((Value.as_int q + 1) mod 4), Value.sym "ok"))
  in
  let r = Type_spec.reachable counter ~from:(Value.int 0) in
  Alcotest.(check int) "all 4 reachable" 4 (Value.Set.cardinal r);
  let one = Type_spec.reachable_in_one_step counter ~from:(Value.int 2) in
  Alcotest.(check int) "single successor" 1 (Value.Set.cardinal one);
  Alcotest.(check bool) "is 3" true (Value.Set.mem (Value.int 3) one)

let test_validate_ok () =
  match Type_spec.validate toggle with
  | Ok () -> ()
  | Error e -> Alcotest.failf "toggle should validate: %s" e

let test_validate_bad_successor () =
  let broken =
    Type_spec.deterministic_oblivious ~name:"broken" ~ports:1
      ~initial:(Value.int 0)
      ~states:[ Value.int 0 ]
      ~invocations:[ Value.sym "go" ]
      (fun _ _ -> (Value.int 99, Value.sym "ok"))
  in
  Alcotest.(check bool) "validate flags escape" true
    (Result.is_error (Type_spec.validate broken))

let test_check_oblivious () =
  Alcotest.(check bool) "toggle oblivious" true (Type_spec.check_oblivious toggle);
  let biased =
    Type_spec.make ~name:"biased" ~ports:2 ~initial:Value.unit
      ~states:[ Value.unit ]
      ~invocations:[ Value.sym "who" ]
      ~oblivious:false
      (fun q ~port ~inv:_ -> [ (q, Value.int port) ])
  in
  Alcotest.(check bool) "biased not oblivious" false
    (Type_spec.check_oblivious biased)

(* --- Seq_history -------------------------------------------------------- *)

let test_history_states () =
  let h =
    {
      Seq_history.start = Value.falsity;
      entries =
        [
          { port = 0; inv = Value.sym "flip"; resp = Value.falsity };
          { port = 1; inv = Value.sym "flip"; resp = Value.truth };
        ];
    }
  in
  Alcotest.(check int) "length" 2 (Seq_history.length h);
  Alcotest.(check bool) "legal" true (Seq_history.is_legal toggle h);
  Alcotest.check value "final" Value.falsity (Seq_history.final_state toggle h);
  Alcotest.(check int) "port filter" 1
    (List.length (Seq_history.on_port h 0));
  Alcotest.check value "return value" Value.truth
    (Option.get (Seq_history.return_value h))

let test_history_illegal () =
  let h =
    {
      Seq_history.start = Value.falsity;
      entries = [ { port = 0; inv = Value.sym "flip"; resp = Value.truth } ];
    }
  in
  Alcotest.(check bool) "wrong response illegal" false
    (Seq_history.is_legal toggle h)

let test_history_run () =
  match
    Seq_history.run toggle Value.falsity
      [ (0, Value.sym "flip"); (0, Value.sym "flip"); (1, Value.sym "flip") ]
  with
  | None -> Alcotest.fail "run should succeed"
  | Some h ->
    Alcotest.(check int) "3 entries" 3 (Seq_history.length h);
    Alcotest.check value "final" Value.truth (Seq_history.final_state toggle h)

let test_history_enumerate () =
  (* toggle is deterministic with 1 invocation and 2 ports: histories of
     length ≤ 2 number 1 + 2 + 4 = 7. *)
  let hs = Seq_history.enumerate toggle ~start:Value.falsity ~max_len:2 in
  Alcotest.(check int) "count" 7 (List.length hs);
  List.iter
    (fun h ->
      Alcotest.(check bool) "each legal" true (Seq_history.is_legal toggle h))
    hs

let test_history_random () =
  let rng = Random.State.make [| 42 |] in
  for len = 0 to 8 do
    let h = Seq_history.random rng toggle ~start:Value.falsity ~len in
    Alcotest.(check int) "requested length" len (Seq_history.length h);
    Alcotest.(check bool) "legal" true (Seq_history.is_legal toggle h)
  done

let prop_enumerated_all_legal =
  QCheck.Test.make ~name:"enumerate yields only legal histories"
    (QCheck.make (QCheck.Gen.int_bound 3)) (fun n ->
      let hs = Seq_history.enumerate toggle ~start:Value.truth ~max_len:n in
      List.for_all (Seq_history.is_legal toggle) hs)

let () =
  Alcotest.run "wfc_spec"
    [
      ( "value",
        [
          Alcotest.test_case "distinct values differ" `Quick test_value_order;
          Alcotest.test_case "antisymmetry" `Quick test_value_antisym;
          Alcotest.test_case "destructors" `Quick test_value_destructors;
          QCheck_alcotest.to_alcotest prop_compare_total;
          QCheck_alcotest.to_alcotest prop_equal_hash;
          QCheck_alcotest.to_alcotest prop_compare_transitive;
        ] );
      ( "intern",
        [
          Alcotest.test_case "sibling-reorder hash separation" `Quick
            test_hash_sibling_reorder;
          QCheck_alcotest.to_alcotest prop_intern_roundtrip;
          QCheck_alcotest.to_alcotest prop_intern_sharing;
          QCheck_alcotest.to_alcotest prop_intern_constructors;
        ] );
      ( "type_spec",
        [
          Alcotest.test_case "deterministic step" `Quick test_step_deterministic;
          Alcotest.test_case "bad port" `Quick test_step_bad_port;
          Alcotest.test_case "is_deterministic" `Quick test_is_deterministic;
          Alcotest.test_case "reachability" `Quick test_reachable;
          Alcotest.test_case "validate ok" `Quick test_validate_ok;
          Alcotest.test_case "validate catches escapes" `Quick
            test_validate_bad_successor;
          Alcotest.test_case "obliviousness check" `Quick test_check_oblivious;
        ] );
      ( "seq_history",
        [
          Alcotest.test_case "states and accessors" `Quick test_history_states;
          Alcotest.test_case "illegal history" `Quick test_history_illegal;
          Alcotest.test_case "run" `Quick test_history_run;
          Alcotest.test_case "enumerate" `Quick test_history_enumerate;
          Alcotest.test_case "random legal" `Quick test_history_random;
          QCheck_alcotest.to_alcotest prop_enumerated_all_legal;
        ] );
    ]
